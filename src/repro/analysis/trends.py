"""Pairwise vulnerability-trend comparison (Table I of the paper).

Two workloads form a *consistent* pair if both metrics rank them the same
way (or either metric ties them), and an *opposite* pair if the rankings
strictly conflict — the paper's headline evidence that SVF misleads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.log import get_logger

log = get_logger(__name__)


def _sign(x: float, tol: float = 1e-12) -> int:
    if x > tol:
        return 1
    if x < -tol:
        return -1
    return 0


@dataclass
class TrendComparison:
    """Result of comparing two metrics over the same workload set."""

    consistent: int = 0
    opposite: int = 0
    opposite_pairs: list[tuple[str, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.consistent + self.opposite

    @property
    def opposite_fraction(self) -> float:
        return self.opposite / self.total if self.total else 0.0

    def row(self) -> str:
        t = self.total or 1
        return (
            f"{self.consistent} ({self.consistent / t:.0%}) | "
            f"{self.opposite} ({self.opposite / t:.0%})"
        )


def _ranks(values: np.ndarray) -> np.ndarray:
    """Fractional ranks (ties get the mean of their rank range)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    for v in np.unique(values):
        mask = values == v
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman(
    metric_a: dict[str, float], metric_b: dict[str, float]
) -> float:
    """Spearman rank correlation of two metrics over the same workloads.

    The pairwise consistent/opposite table answers "do the metrics ever
    disagree?"; Spearman answers "how well does one metric *rank* workloads
    by the other?" — which is the question for the static estimators
    (:mod:`repro.staticanalysis.vf`): a positive coefficient means the
    zero-injection estimate orders workloads the way the campaigns do.
    Returns 0.0 when either metric is constant (rank order undefined).
    """
    if set(metric_a) != set(metric_b):
        missing = set(metric_a) ^ set(metric_b)
        raise ValueError(f"metric key mismatch: {sorted(missing)}")
    names = sorted(metric_a)
    if len(names) < 2:
        log.warning(
            "spearman over %d workload(s): rank order undefined, "
            "returning 0.0", len(names))
        return 0.0
    ra = _ranks(np.array([metric_a[n] for n in names], dtype=float))
    rb = _ranks(np.array([metric_b[n] for n in names], dtype=float))
    if ra.std() == 0.0 or rb.std() == 0.0:
        which = "both metrics" if ra.std() == rb.std() == 0.0 else (
            "metric A" if ra.std() == 0.0 else "metric B")
        log.warning(
            "spearman degenerate: %s rank every workload identically "
            "(all ties); returning 0.0 instead of NaN", which)
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


def compare_trends(
    metric_a: dict[str, float], metric_b: dict[str, float]
) -> TrendComparison:
    """Compare rankings of two metrics over all workload pairs.

    Both dicts must cover the same workload names. A pair is opposite iff
    the two metrics order it in strictly conflicting directions.
    """
    if set(metric_a) != set(metric_b):
        missing = set(metric_a) ^ set(metric_b)
        raise ValueError(f"metric key mismatch: {sorted(missing)}")
    names = sorted(metric_a)
    result = TrendComparison()
    for x, y in itertools.combinations(names, 2):
        sa = _sign(metric_a[x] - metric_a[y])
        sb = _sign(metric_b[x] - metric_b[y])
        if sa * sb < 0:
            result.opposite += 1
            result.opposite_pairs.append((x, y))
        else:
            result.consistent += 1
    return result
