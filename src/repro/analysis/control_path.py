"""Control-path analysis (Figure 11 of the paper).

The paper uses the executed cycle count as a proxy for the control path: a
*masked* injection whose run used a different number of cycles than the
fault-free run took a different control path yet still produced the correct
output — hardening visibly increases this class because the redundant
threads absorb control corruption.
"""

from __future__ import annotations

from repro.fi.campaign import CampaignResult


def control_path_rate(result: CampaignResult) -> float:
    """Fraction of campaign runs that were masked with a changed cycle count."""
    if result.trials == 0:
        return 0.0
    return result.control_path_masked / result.trials


def control_path_rate_merged(results: list[CampaignResult]) -> float:
    """Pooled control-path-affected masked rate over several campaigns."""
    trials = sum(r.trials for r in results)
    if trials == 0:
        return 0.0
    return sum(r.control_path_masked for r in results) / trials
