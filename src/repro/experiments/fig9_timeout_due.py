"""Figure 9: Timeout and DUE percentages of AVF and SVF, with and without
TMR hardening.

The paper: SDCs convert into DUEs under TMR — detected-unrecoverable rates
grow for many kernels, so the "protected" application can end up *more*
vulnerable overall.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None, trials_hardened: int | None = None):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    rows = {}
    for a, k in base.kernel_order():
        b, h = base.kernels[(a, k)], hard.kernels[(a, k)]
        rows[kernel_label(a, k)] = {
            "avf_td": b.avf.timeout + b.avf.due,
            "avf_td_tmr": h.avf.timeout + h.avf.due,
            "svf_td": b.svf.timeout + b.svf.due,
            "svf_td_tmr": h.svf.timeout + h.svf.due,
        }
    return rows


def run(trials: int | None = None, trials_hardened: int | None = None) -> str:
    rows = data(trials, trials_hardened)
    table = format_table(
        ["kernel", "AVF T/O+DUE%", "+TMR%", "SVF T/O+DUE%", "+TMR%"],
        [
            [label, f"{r['avf_td'] * 100:8.4f}", f"{r['avf_td_tmr'] * 100:8.4f}",
             f"{r['svf_td'] * 100:6.2f}", f"{r['svf_td_tmr'] * 100:6.2f}"]
            for label, r in rows.items()
        ],
    )
    grew = sum(1 for r in rows.values() if r["svf_td_tmr"] > r["svf_td"])
    return (
        "== Figure 9: Timeout+DUE of AVF and SVF, with vs without TMR ==\n"
        + table
        + f"\nkernels whose SVF Timeout+DUE grew under TMR: {grew}/23 "
        "(paper: DUEs increase for most kernels)"
    )


if __name__ == "__main__":
    print(run())
