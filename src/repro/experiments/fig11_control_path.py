"""Figure 11: control-path-affected masked runs (microarchitecture-level FI),
with and without TMR hardening.

A masked run whose executed cycle count differs from the fault-free run took
a corrupted control path that the system absorbed. The paper: this class
*grows* under TMR for most kernels — the redundancy corrects many
control-path upsets while keeping the data path intact.
"""

from __future__ import annotations

from repro.analysis.control_path import control_path_rate_merged
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None, trials_hardened: int | None = None):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    rows = {}
    for a, k in base.kernel_order():
        rows[kernel_label(a, k)] = {
            "base": control_path_rate_merged(
                list(base.kernels[(a, k)].uarch.values())
            ),
            "tmr": control_path_rate_merged(
                list(hard.kernels[(a, k)].uarch.values())
            ),
        }
    return rows


def run(trials: int | None = None, trials_hardened: int | None = None) -> str:
    from repro.analysis.report import format_table

    rows = data(trials, trials_hardened)
    table = format_table(
        ["kernel", "ctrl-path masked %", "ctrl-path masked +TMR %"],
        [
            [label, f"{r['base'] * 100:6.2f}", f"{r['tmr'] * 100:6.2f}"]
            for label, r in rows.items()
        ],
    )
    grew = sum(1 for r in rows.values() if r["tmr"] > r["base"])
    return (
        "== Figure 11: control-path-affected masked runs "
        "(microarch-level FI) ==\n" + table
        + f"\nkernels where the rate grew under TMR: {grew}/23 "
        "(paper: grows for most kernels)"
    )


if __name__ == "__main__":
    print(run())
