"""Static AVF-RF estimate vs campaign AVF-RF: rank agreement, zero injections.

The static estimator (:mod:`repro.staticanalysis.vf`) predicts each kernel's
AVF-RF as ``ACE fraction x derating``: the liveness-derived fraction of
allocated register bit-cycles that hold correct-execution state, times the
launch-geometry derating factor — no fault is ever injected. This experiment
asks the only question that matters for a predictor: does it *rank*
applications the way the injection campaigns do? (Hari et al.'s two-level
SDC model makes the same validation move, PAPERS.md.)

The derating factor is taken from the cached campaign results: it is a
structural property of the launch (allocated / physical RF bits, measured by
the fault-free profiling run), not an injection-derived quantity, and using
the identical factor on both sides isolates the comparison to what the
static analysis actually predicts — the failure-rate ordering.
"""

from __future__ import annotations

from repro.analysis.trends import compare_trends, spearman
from repro.arch.structures import Structure
from repro.experiments.common import APP_ORDER, app_label, collect_suite
from repro.kernels import kernel_programs
from repro.staticanalysis import static_vf_report
from repro.utils.stats import weighted_mean


def data(trials: int | None = None):
    """Returns ``(static_estimate, campaign_avf_rf)`` per application."""
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    programs = kernel_programs()
    campaign = {
        app: b.total for app, b in suite.app_breakdown("avf_rf").items()
    }
    static: dict[str, float] = {}
    for app in APP_ORDER:
        items = {
            kernel: d for (a, kernel), d in suite.kernels.items() if a == app
        }
        if not items:
            continue
        estimates: list[float] = []
        weights: list[float] = []
        for kernel, d in items.items():
            rf_result = d.uarch[Structure.RF]
            report = static_vf_report(
                programs[(app, kernel)],
                derating=rf_result.derating_factor,
            )
            estimates.append(report.avf_rf)
            # Same cycle weighting the campaign-side app aggregation uses.
            weights.append(max(d.cycles, 1))
        static[app] = weighted_mean(estimates, weights)
    return static, campaign


def run(trials: int | None = None) -> str:
    static, campaign = data(trials)
    lines = ["== Static AVF-RF estimate vs campaign AVF-RF =="]
    lines.append(f"{'app':<12} {'static est':>10} {'campaign':>10}")
    for app in static:
        lines.append(
            f"{app_label(app):<12} {static[app]:>10.4%} {campaign[app]:>10.4%}"
        )
    rho = spearman(static, campaign)
    cmp = compare_trends(static, campaign)
    lines.append(
        f"Spearman rank correlation: {rho:+.3f} over {len(static)} apps"
    )
    lines.append(
        f"pairwise trends: {cmp.consistent} consistent / {cmp.opposite} "
        f"opposite ({cmp.opposite_fraction:.0%} opposite)"
    )
    lines.append(
        "static side: 0 injections (CFG + liveness dataflow only); campaign "
        "side: statistical RF fault injection"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
