"""Figure 10: per-structure AVF (RF / SMEM / L1D / L2) before and after TMR
for representative kernels.

The paper's representative set: LUD K2, SCP K1, NW K2, BackProp K2,
SRADv1 K2, K-Means K2. The shape to reproduce: TMR's gains concentrate in
RF and SMEM; L1D carries the smallest vulnerability; L2 can gain *new*
vulnerability under hardening.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.arch.structures import Structure
from repro.experiments.common import collect_suite, kernel_label
from repro.fi import avf_of_structure

KERNELS = (
    ("lud", "lud_k2"),
    ("scp", "scp_k1"),
    ("nw", "nw_k2"),
    ("backprop", "backprop_k2"),
    ("sradv1", "sradv1_k2"),
    ("kmeans", "kmeans_k2"),
)

STRUCTURES = (Structure.RF, Structure.SMEM, Structure.L1D, Structure.L2)


def data(trials: int | None = None, trials_hardened: int | None = None):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    out = {}
    for a, k in KERNELS:
        per = {}
        for s in STRUCTURES:
            per[s] = {
                "base": avf_of_structure(base.kernels[(a, k)].uarch[s]),
                "tmr": avf_of_structure(hard.kernels[(a, k)].uarch[s]),
            }
        out[kernel_label(a, k)] = per
    return out


def run(trials: int | None = None, trials_hardened: int | None = None) -> str:
    lines = ["== Figure 10: per-structure AVF before/after TMR =="]
    for s in STRUCTURES:
        rows = []
        for label, per in data(trials, trials_hardened).items():
            b, t = per[s]["base"], per[s]["tmr"]
            rows.append([
                label,
                f"{b.sdc * 100:7.4f}", f"{b.timeout * 100:7.4f}", f"{b.due * 100:7.4f}",
                f"{t.sdc * 100:7.4f}", f"{t.timeout * 100:7.4f}", f"{t.due * 100:7.4f}",
            ])
        lines.append(f"-- {s.name} --")
        lines.append(format_table(
            ["kernel", "SDC%", "T/O%", "DUE%", "SDC+TMR%", "T/O+TMR%", "DUE+TMR%"],
            rows,
        ))
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
