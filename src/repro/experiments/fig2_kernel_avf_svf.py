"""Figure 2: kernel-level AVF (bottom) vs SVF (top) for all 23 kernels."""

from __future__ import annotations

from repro.analysis.report import stacked_row
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None):
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    order = suite.kernel_order()
    avf = {kernel_label(a, k): suite.kernels[(a, k)].avf for a, k in order}
    svf = {kernel_label(a, k): suite.kernels[(a, k)].svf for a, k in order}
    return avf, svf


def run(trials: int | None = None) -> str:
    avf, svf = data(trials)
    lines = ["== Figure 2: kernel-level AVF vs SVF (23 kernels) =="]
    lines.append("-- SVF --")
    scale = max(b.total for b in svf.values()) or 1.0
    for label, b in svf.items():
        lines.append(stacked_row(label, b, scale))
    lines.append("-- AVF --")
    scale = max(b.total for b in avf.values()) or 1.0
    for label, b in avf.items():
        lines.append(stacked_row(label, b, scale))
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
