"""Severity-split Figure 1: does the AVF-vs-SVF mismatch survive when only
*critical* SDCs count?

The paper's Table I / Fig. 1 treat every SDC alike and find that a large
fraction of application pairs rank oppositely under AVF vs SVF. SDC anatomy
(:mod:`repro.sdc`) splits SDCs into TOLERABLE vs CRITICAL by each
application's own quality metric; this driver recomputes the
application-level AVF and SVF with the SDC class restricted to critical
SDCs (Timeout/DUE are unconditionally failures and stay) and compares the
pairwise ranking agreement of both variants.

Campaigns run with ``sdc_anatomy=True`` and therefore occupy their own
cache entries — the all-SDC numbers are recomputed from the same anatomy
campaigns, so both variants come from identical trials.
"""

from __future__ import annotations

from repro.analysis.report import format_table, rate_with_ci, stacked_row
from repro.analysis.trends import compare_trends
from repro.arch.config import quadro_gv100_like
from repro.arch.structures import structure_bits
from repro.fi import VulnBreakdown, avf_of_application, svf_of_application
from repro.experiments.common import app_label, collect_suite

#: Paper's Table I headline: fraction of app pairs ranked oppositely.
PAPER_OPPOSITE_FRACTION = 0.42


def _critical_breakdown(result) -> VulnBreakdown:
    """The campaign's class rates with SDC restricted to critical SDCs."""
    counts = result.counts
    n = counts.classified
    if n == 0:
        return VulnBreakdown()
    anatomy = result.sdc_anatomy or {}
    critical = int(anatomy.get("critical", counts.sdc))
    df = result.derating_factor
    return VulnBreakdown(
        sdc=critical / n * df,
        timeout=counts.timeout / n * df,
        due=counts.due / n * df,
    )


def data(trials: int | None = None, apps: list[str] | None = None):
    """Suite data plus per-app all-SDC and critical-only AVF/SVF."""
    suite = collect_suite(hardened=False, trials=trials, with_ld=False,
                          apps=apps, sdc_anatomy=True)
    config = quadro_gv100_like()

    kernel_avf_crit: dict[tuple[str, str], VulnBreakdown] = {}
    kernel_svf_crit: dict[tuple[str, str], VulnBreakdown] = {}
    severity: dict[str, dict[str, int]] = {}
    for (app, kernel), d in suite.kernels.items():
        items = [_critical_breakdown(r) for r in d.uarch.values()]
        weights = [structure_bits(s, config) for s in d.uarch]
        kernel_avf_crit[(app, kernel)] = VulnBreakdown.combine(items, weights)
        kernel_svf_crit[(app, kernel)] = _critical_breakdown(d.sw)
        tally = severity.setdefault(app, {"sdc": 0, "critical": 0})
        for r in [*d.uarch.values(), d.sw]:
            anatomy = r.sdc_anatomy or {}
            tally["sdc"] += anatomy.get("critical", 0) + anatomy.get(
                "tolerable", 0)
            tally["critical"] += anatomy.get("critical", 0)

    def per_app(kernel_values, aggregate, weight_attr):
        out: dict[str, VulnBreakdown] = {}
        for app in {a for a, _ in suite.kernels}:
            items = {k: v for (a, k), v in kernel_values.items() if a == app}
            weights = {k: getattr(d, weight_attr)
                       for (a, k), d in suite.kernels.items() if a == app}
            out[app] = aggregate(items, weights)
        return out

    avf_all = suite.app_avf()
    svf_all = suite.app_svf()
    avf_crit = per_app(kernel_avf_crit, avf_of_application, "cycles")
    svf_crit = per_app(kernel_svf_crit, svf_of_application, "instructions")
    return avf_all, svf_all, avf_crit, svf_crit, severity


def run(trials: int | None = None, apps: list[str] | None = None) -> str:
    avf_all, svf_all, avf_crit, svf_crit, severity = data(trials, apps)

    lines = ["== SDC anatomy: severity-split AVF vs SVF =="]
    lines.append("-- per-application SDC severity (uarch + sw campaigns) --")
    rows = []
    for app in sorted(severity):
        t = severity[app]
        rows.append([app_label(app), t["sdc"], t["critical"],
                     t["sdc"] - t["critical"],
                     rate_with_ci(t["critical"], t["sdc"])])
    lines.append(format_table(
        ["app", "sdc", "critical", "tolerable", "critical rate ±CI"], rows))

    lines.append("-- critical-only SVF (software-level, V100-like) --")
    scale = max(b.total for b in svf_crit.values()) or 1.0
    for app in sorted(svf_crit):
        lines.append(stacked_row(app_label(app), svf_crit[app], scale))
    lines.append("-- critical-only AVF (cross-layer, GV100-like) --")
    scale = max(b.total for b in avf_crit.values()) or 1.0
    for app in sorted(avf_crit):
        lines.append(stacked_row(app_label(app), avf_crit[app], scale))

    totals = {name: {a: b.total for a, b in m.items()}
              for name, m in (("avf_all", avf_all), ("svf_all", svf_all),
                              ("avf_crit", avf_crit), ("svf_crit", svf_crit))}
    all_cmp = compare_trends(totals["avf_all"], totals["svf_all"])
    crit_cmp = compare_trends(totals["avf_crit"], totals["svf_crit"])
    lines.append("-- pairwise AVF-vs-SVF ranking agreement --")
    lines.append(f"  all SDCs:       {all_cmp.row()}  "
                 f"opposite {all_cmp.opposite_fraction:.0%}")
    lines.append(f"  critical only:  {crit_cmp.row()}  "
                 f"opposite {crit_cmp.opposite_fraction:.0%}")
    lines.append(
        f"  paper (Table I, all SDCs): {PAPER_OPPOSITE_FRACTION:.0%} of "
        f"pairs opposite")
    delta = crit_cmp.opposite_fraction - all_cmp.opposite_fraction
    trend = ("shrinks" if delta < 0 else "grows" if delta > 0 else
             "is unchanged")
    lines.append(
        f"note: restricting SDCs to critical ones {trend} the cross-layer "
        f"mismatch ({all_cmp.opposite_fraction:.0%} -> "
        f"{crit_cmp.opposite_fraction:.0%}); tolerable SDCs are part of "
        f"what the layers disagree about.")
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
