"""Experiment drivers: one module per paper table/figure.

Every driver exposes ``run(trials=None) -> str`` producing the text report
with the same rows/series as the paper's artifact, plus a data accessor used
by the test suite. Campaign results are cached on disk, so the full set of
experiments shares one round of simulation.
"""

from repro.experiments import common

__all__ = ["common"]
