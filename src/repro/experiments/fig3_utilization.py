"""Figure 3: AVF, SVF, and normalised resource-utilization metrics for
three kernel pairs.

* 3a — HotSpot K1 vs LUD K1 (the paper's opposite-trend example)
* 3b — LUD K2 vs LUD K1 (consistent trend, utilization tracks both)
* 3c — VA K1 vs SCP K1 (opposite trend, mixed utilization signals)
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.utilization import FIG3_METRICS, kernel_metrics, normalized_pair
from repro.arch.config import quadro_gv100_like
from repro.experiments.common import collect_suite, kernel_label
from repro.fi import profile_app
from repro.kernels import get_application

PAIRS = (
    ("3a", ("hotspot", "hotspot_k1"), ("lud", "lud_k1")),
    ("3b", ("lud", "lud_k2"), ("lud", "lud_k1")),
    ("3c", ("va", "va_k1"), ("scp", "scp_k1")),
)


def pair_series(ka, kb, suite, profiles, config):
    """Normalised (AVF, SVF, metrics...) percentages for one kernel pair."""
    da, db = suite.kernels[ka], suite.kernels[kb]
    ma = kernel_metrics(profiles[ka[0]], ka[1], config)
    mb = kernel_metrics(profiles[kb[0]], kb[1], config)
    series = {
        "AVF": normalized_pair(da.avf.total, db.avf.total),
        "SVF": normalized_pair(da.svf.total, db.svf.total),
    }
    for metric in FIG3_METRICS:
        series[metric] = normalized_pair(ma[metric], mb[metric])
    return series


def data(trials: int | None = None):
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    config = quadro_gv100_like()
    needed = {ka[0] for _, ka, kb in PAIRS} | {kb[0] for _, ka, kb in PAIRS}
    profiles = {
        app_name: profile_app(get_application(app_name), config)
        for app_name in sorted(needed)
    }
    return {
        name: (ka, kb, pair_series(ka, kb, suite, profiles, config))
        for name, ka, kb in PAIRS
    }


def run(trials: int | None = None) -> str:
    lines = ["== Figure 3: utilization as a vulnerability-trend indicator =="]
    for name, (ka, kb, series) in data(trials).items():
        la, lb = kernel_label(*ka), kernel_label(*kb)
        lines.append(f"-- Fig. {name}: {la} vs {lb} (normalised %, pair sums to 100) --")
        rows = [[metric, f"{a:5.1f}", f"{b:5.1f}"]
                for metric, (a, b) in series.items()]
        lines.append(format_table(["metric", la, lb], rows))
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
