"""Shared campaign orchestration for the experiment drivers.

``collect_suite`` runs (or loads from cache) the campaigns every figure
shares: per kernel, microarchitecture-level FI on all five structures on the
GV100-like configuration and software-level FI (plus the loads-only SVF-LD
variant) on the V100-like configuration — the paper's tool pairing.

Hardened variants run the same applications through the ``"tmr"`` scheme
from the hardening registry (:mod:`repro.hardening.registry`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.config import quadro_gv100_like, tesla_v100_like
from repro.arch.structures import Structure
from repro.config import get_settings
from repro.fi import (
    CampaignResult,
    CampaignSpec,
    VulnBreakdown,
    avf_of_application,
    avf_of_cache_group,
    avf_of_chip,
    avf_of_structure,
    default_trials,
    profile_app,
    run_campaign,
    svf_of_application,
    svf_of_kernel,
)
from repro.hardening import hardening_scheme
from repro.kernels import all_applications

#: Paper's figure/application ordering.
APP_ORDER = (
    "sradv1", "sradv2", "kmeans", "hotspot", "lud",
    "scp", "va", "nw", "pathfinder", "backprop", "bfs",
)


def hardened_trials() -> int:
    """Hardened apps simulate ~3.5x slower; default to a smaller n."""
    settings = get_settings()
    if settings.trials_hardened is not None:
        return settings.trials_hardened
    return max(16, settings.trials * 5 // 8)


#: ``progress_factory(campaign label) -> per-trial progress callback``
#: (see :mod:`repro.fi.runner`); lets experiment drivers surface trial
#: progress for every campaign in a suite pass.
ProgressFactory = Callable[[str], Callable]


def stderr_progress_factory(label: str):
    """Default suite progress reporter: one ``\\r``-updated stderr line."""

    def progress(done: int, total: int, outcome) -> None:
        end = "\n" if done == total else "\r"
        print(f"  {label}: {done}/{total} [{outcome.value}]",
              end=end, file=sys.stderr, flush=True)

    return progress


@dataclass
class KernelData:
    """Everything the figures need about one kernel."""

    app_name: str
    kernel: str
    uarch: dict[Structure, CampaignResult]
    sw: CampaignResult
    sw_ld: CampaignResult | None = None

    avf: VulnBreakdown = field(default_factory=VulnBreakdown)
    avf_rf: VulnBreakdown = field(default_factory=VulnBreakdown)
    avf_cache: VulnBreakdown = field(default_factory=VulnBreakdown)
    svf: VulnBreakdown = field(default_factory=VulnBreakdown)
    svf_ld: VulnBreakdown = field(default_factory=VulnBreakdown)

    @property
    def cycles(self) -> int:
        return next(iter(self.uarch.values())).kernel_cycles

    @property
    def instructions(self) -> int:
        return self.sw.kernel_instructions


@dataclass
class SuiteData:
    """All per-kernel campaign data for one (hardened or not) suite pass."""

    kernels: dict[tuple[str, str], KernelData]
    hardened: bool

    def kernel_order(self) -> list[tuple[str, str]]:
        return sorted(self.kernels, key=lambda k: (APP_ORDER.index(k[0]), k[1]))

    def app_avf(self) -> dict[str, VulnBreakdown]:
        out: dict[str, VulnBreakdown] = {}
        for app in APP_ORDER:
            items = {k: d for (a, k), d in self.kernels.items() if a == app}
            if items:
                out[app] = avf_of_application(
                    {k: d.avf for k, d in items.items()},
                    {k: d.cycles for k, d in items.items()},
                )
        return out

    def app_svf(self) -> dict[str, VulnBreakdown]:
        out: dict[str, VulnBreakdown] = {}
        for app in APP_ORDER:
            items = {k: d for (a, k), d in self.kernels.items() if a == app}
            if items:
                out[app] = svf_of_application(
                    {k: d.svf for k, d in items.items()},
                    {k: d.instructions for k, d in items.items()},
                )
        return out

    def app_breakdown(self, which: str) -> dict[str, VulnBreakdown]:
        """App-level aggregation of one sub-metric ('avf_rf', 'avf_cache',
        'svf_ld', ...), weighted as its base metric prescribes."""
        out: dict[str, VulnBreakdown] = {}
        for app in APP_ORDER:
            items = {k: d for (a, k), d in self.kernels.items() if a == app}
            if not items:
                continue
            values = {k: getattr(d, which) for k, d in items.items()}
            if which.startswith("avf"):
                out[app] = avf_of_application(
                    values, {k: d.cycles for k, d in items.items()}
                )
            else:
                out[app] = svf_of_application(
                    values, {k: d.instructions for k, d in items.items()}
                )
        return out


def collect_suite(
    hardened: bool = False,
    trials: int | None = None,
    with_ld: bool = True,
    apps: list[str] | None = None,
    seed: int = 1,
    progress_factory: ProgressFactory | None = None,
    workers: int | None = None,
    sdc_anatomy: bool = False,
) -> SuiteData:
    """Run/load the campaign grid for the whole benchmark suite.

    ``progress_factory`` (e.g. :func:`stderr_progress_factory`) is called
    once per campaign with a ``app/kernel/level`` label and must return a
    per-trial callback, forwarded to the campaign runner. ``workers``
    (default ``REPRO_WORKERS``) sets the trial-execution pool size every
    campaign in the pass runs with. ``sdc_anatomy`` turns on per-SDC
    fingerprints and severity verdicts for every campaign in the pass
    (see :mod:`repro.sdc`; distinct cache entries from an anatomy-off
    pass).
    """
    if trials is None:
        trials = hardened_trials() if hardened else default_trials()
    uarch_config = quadro_gv100_like()
    sw_config = tesla_v100_like()
    # The suite's hardened pass is TMR by name from the hardening-zoo
    # registry (spec identity — hardened=True — is unchanged).
    factory = hardening_scheme("tmr") if hardened else None
    kernels: dict[tuple[str, str], KernelData] = {}
    for app in all_applications():
        if apps is not None and app.name not in apps:
            continue

        # Profiles are simulated lazily: a fully-cached suite pass never
        # touches the simulator.
        profiles: dict[str, object] = {}

        def supplier(config, _app=app, _profiles=profiles):
            def get():
                if config.name not in _profiles:
                    _profiles[config.name] = profile_app(_app, config, factory)
                return _profiles[config.name]

            return get

        def reporter(label, _app=app):
            if progress_factory is None:
                return None
            return progress_factory(f"{_app.name}/{label}")

        def cell(level, kernel, config, structure=None, label=None):
            return run_campaign(
                CampaignSpec(level=level, app=app, kernel=kernel,
                             structure=structure, config=config,
                             trials=trials, seed=seed, workers=workers,
                             hardened=hardened, sdc_anatomy=sdc_anatomy),
                harness_factory=factory,
                profile_supplier=supplier(config),
                progress=reporter(label),
            )

        for kernel in app.kernel_names:
            uarch = {
                s: cell("uarch", kernel, uarch_config, structure=s,
                        label=f"{kernel}/uarch-{s.value}")
                for s in Structure
            }
            sw = cell("sw", kernel, sw_config, label=f"{kernel}/sw")
            sw_ld = None
            if with_ld:
                sw_ld = cell("sw-ld", kernel, sw_config,
                             label=f"{kernel}/sw-ld")
            data = KernelData(app.name, kernel, uarch, sw, sw_ld)
            data.avf = avf_of_chip(uarch, uarch_config)
            data.avf_rf = avf_of_structure(uarch[Structure.RF])
            data.avf_cache = avf_of_cache_group(uarch, uarch_config)
            data.svf = svf_of_kernel(sw)
            if sw_ld is not None:
                data.svf_ld = svf_of_kernel(sw_ld)
            kernels[(app.name, kernel)] = data
    return SuiteData(kernels=kernels, hardened=hardened)


def kernel_label(app: str, kernel: str) -> str:
    """Paper-style label, e.g. ('sradv1', 'sradv1_k4') -> 'SRADv1 K4'."""
    pretty = {
        "sradv1": "SRADv1", "sradv2": "SRADv2", "kmeans": "K-Means",
        "hotspot": "HotSpot", "lud": "LUD", "scp": "SCP", "va": "VA",
        "nw": "NW", "pathfinder": "PathFinder", "backprop": "BackProp",
        "bfs": "BFS",
    }[app]
    suffix = kernel.rsplit("_k", 1)[-1]
    return f"{pretty} K{suffix}"


def app_label(app: str) -> str:
    return kernel_label(app, "x_k").split(" ")[0]
