"""Figure 7: kernel AVF and SVF with and without TMR hardening.

The paper's expectation: most kernels improve under TMR, but some *increase*
in vulnerability, and the two methodologies disagree about which.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None, trials_hardened: int | None = None):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    order = base.kernel_order()
    rows = {}
    for a, k in order:
        rows[kernel_label(a, k)] = {
            "avf": base.kernels[(a, k)].avf.total,
            "avf_tmr": hard.kernels[(a, k)].avf.total,
            "svf": base.kernels[(a, k)].svf.total,
            "svf_tmr": hard.kernels[(a, k)].svf.total,
        }
    return rows


def run(trials: int | None = None, trials_hardened: int | None = None) -> str:
    rows = data(trials, trials_hardened)
    table_rows = []
    for label, r in rows.items():
        table_rows.append([
            label,
            f"{r['avf'] * 100:7.4f}", f"{r['avf_tmr'] * 100:7.4f}",
            "worse" if r["avf_tmr"] > r["avf"] else "better/equal",
            f"{r['svf'] * 100:6.2f}", f"{r['svf_tmr'] * 100:6.2f}",
            "worse" if r["svf_tmr"] > r["svf"] else "better/equal",
        ])
    header = ["kernel", "AVF%", "AVF+TMR%", "AVF verdict",
              "SVF%", "SVF+TMR%", "SVF verdict"]
    worse_avf = sum(1 for r in rows.values() if r["avf_tmr"] > r["avf"])
    worse_svf = sum(1 for r in rows.values() if r["svf_tmr"] > r["svf"])
    return (
        "== Figure 7: AVF and SVF with vs without TMR hardening ==\n"
        + format_table(header, table_rows)
        + f"\nkernels made worse by TMR: AVF {worse_avf}, SVF {worse_svf} "
        f"(paper: a handful under each, and they disagree)"
    )


if __name__ == "__main__":
    print(run())
