"""Budgeted-protection case study: the cost of trusting SVF.

Section III-A of the paper argues that SVF-guided partial protection wastes
resources: "software designers may decide to protect ... the most vulnerable
application, LUD ... However, since AVF shows that the SDC rate is extremely
low, protecting this application is unnecessary".

This experiment makes that argument quantitative. With a budget to apply
TMR to ``k`` of the 11 applications, compare three selection policies:

* **SVF-guided** — protect the top-k applications by SVF,
* **AVF-guided** — protect the top-k by ground-truth AVF,
* **oracle** — the k applications whose protection minimises residual AVF.

Residual vulnerability = the sum of per-application chip AVF totals, using
the hardened AVF for protected applications and the baseline AVF otherwise.
"""

from __future__ import annotations

import itertools

from repro.analysis.report import format_table
from repro.experiments.common import app_label, collect_suite


def data(trials: int | None = None, trials_hardened: int | None = None,
         budget: int = 3):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    base_avf = {a: b.total for a, b in base.app_avf().items()}
    hard_avf = {a: b.total for a, b in hard.app_avf().items()}
    base_svf = {a: b.total for a, b in base.app_svf().items()}

    def residual(protected: set[str]) -> float:
        return sum(
            hard_avf[a] if a in protected else base_avf[a] for a in base_avf
        )

    svf_choice = set(sorted(base_svf, key=base_svf.get, reverse=True)[:budget])
    avf_choice = set(sorted(base_avf, key=base_avf.get, reverse=True)[:budget])
    oracle_choice = min(
        (set(c) for c in itertools.combinations(base_avf, budget)),
        key=residual,
    )
    return {
        "budget": budget,
        "unprotected": residual(set()),
        "svf_choice": sorted(svf_choice),
        "avf_choice": sorted(avf_choice),
        "oracle_choice": sorted(oracle_choice),
        "svf_residual": residual(svf_choice),
        "avf_residual": residual(avf_choice),
        "oracle_residual": residual(oracle_choice),
    }


def run(trials: int | None = None, trials_hardened: int | None = None,
        budget: int = 3) -> str:
    d = data(trials, trials_hardened, budget)
    rows = [
        ["no protection", "-", f"{d['unprotected'] * 100:.4f}"],
        ["SVF-guided", ", ".join(app_label(a) for a in d["svf_choice"]),
         f"{d['svf_residual'] * 100:.4f}"],
        ["AVF-guided", ", ".join(app_label(a) for a in d["avf_choice"]),
         f"{d['avf_residual'] * 100:.4f}"],
        ["oracle", ", ".join(app_label(a) for a in d["oracle_choice"]),
         f"{d['oracle_residual'] * 100:.4f}"],
    ]
    table = format_table(
        ["policy", f"protected apps (budget={d['budget']})",
         "residual AVF sum %"], rows,
    )
    waste = d["svf_residual"] - d["avf_residual"]
    return (
        "== Budgeted protection study: who should get TMR? ==\n" + table
        + f"\nSVF-guided selection leaves {waste * 100:.4f} pp more residual "
        "vulnerability than AVF-guided selection — the paper's 'misguided "
        "decisions' made quantitative."
    )


if __name__ == "__main__":
    print(run())
