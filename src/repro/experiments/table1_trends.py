"""Table I: consistent vs opposite vulnerability trends.

Four rows, as in the paper: application-level AVF vs SVF, kernel-level AVF
vs SVF, AVF-RF vs SVF, and AVF-Cache vs SVF-LD. The paper finds ~42 %/43 %
opposite pairs for the first two rows and 58 % for the cache comparison.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.trends import TrendComparison, compare_trends
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None) -> dict[str, TrendComparison]:
    suite = collect_suite(hardened=False, trials=trials, with_ld=True)
    app_avf = {a: b.total for a, b in suite.app_avf().items()}
    app_svf = {a: b.total for a, b in suite.app_svf().items()}
    order = suite.kernel_order()
    kernel_avf = {kernel_label(a, k): suite.kernels[(a, k)].avf.total
                  for a, k in order}
    kernel_svf = {kernel_label(a, k): suite.kernels[(a, k)].svf.total
                  for a, k in order}
    app_avf_rf = {a: b.total for a, b in suite.app_breakdown("avf_rf").items()}
    app_avf_cache = {a: b.total
                     for a, b in suite.app_breakdown("avf_cache").items()}
    app_svf_ld = {a: b.total for a, b in suite.app_breakdown("svf_ld").items()}
    return {
        "Application-Level": compare_trends(app_avf, app_svf),
        "Kernel-Level": compare_trends(kernel_avf, kernel_svf),
        "AVF-RF vs. SVF": compare_trends(app_avf_rf, app_svf),
        "AVF-Cache vs. SVF-LD": compare_trends(app_avf_cache, app_svf_ld),
    }


def run(trials: int | None = None) -> str:
    rows = data(trials)
    table = format_table(
        ["Comparison", "Consistent Trend", "Opposite Trend"],
        [
            [name, f"{c.consistent} ({c.consistent / c.total:.0%})",
             f"{c.opposite} ({c.opposite / c.total:.0%})"]
            for name, c in rows.items()
        ],
    )
    paper = (
        "paper: 32(58%)/23(42%), 144(57%)/109(43%), "
        "32(58%)/23(42%), 23(42%)/32(58%)"
    )
    return "== Table I: opposite trends in application/kernel pairs ==\n" \
        + table + "\n" + paper


if __name__ == "__main__":
    print(run())
