"""Figure 8: SDC share of the AVF, with and without TMR hardening.

The paper's key insight #5: SVF claims TMR eliminates SDCs, but the
cross-layer AVF still finds residual SDCs — hardware faults landing in
output-bearing cache lines after the vote are invisible to software.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.common import collect_suite, kernel_label


def data(trials: int | None = None, trials_hardened: int | None = None):
    base = collect_suite(hardened=False, trials=trials, with_ld=False)
    hard = collect_suite(hardened=True, trials=trials_hardened, with_ld=False)
    rows = {}
    for a, k in base.kernel_order():
        rows[kernel_label(a, k)] = {
            "avf_sdc": base.kernels[(a, k)].avf.sdc,
            "avf_sdc_tmr": hard.kernels[(a, k)].avf.sdc,
            "svf_sdc": base.kernels[(a, k)].svf.sdc,
            "svf_sdc_tmr": hard.kernels[(a, k)].svf.sdc,
        }
    return rows


def run(trials: int | None = None, trials_hardened: int | None = None) -> str:
    rows = data(trials, trials_hardened)
    table = format_table(
        ["kernel", "AVF-SDC%", "AVF-SDC+TMR%", "SVF-SDC%", "SVF-SDC+TMR%"],
        [
            [label, f"{r['avf_sdc'] * 100:8.4f}", f"{r['avf_sdc_tmr'] * 100:8.4f}",
             f"{r['svf_sdc'] * 100:6.2f}", f"{r['svf_sdc_tmr'] * 100:6.2f}"]
            for label, r in rows.items()
        ],
    )
    residual = sum(1 for r in rows.values() if r["avf_sdc_tmr"] > 0)
    sw_residual = sum(1 for r in rows.values() if r["svf_sdc_tmr"] > 0)
    return (
        "== Figure 8: SDC outcomes of AVF with vs without hardening ==\n"
        + table
        + f"\nkernels with residual SDCs after TMR: AVF {residual}, "
        f"SVF {sw_residual} (paper: AVF retains SDCs, SVF near zero)"
    )


if __name__ == "__main__":
    print(run())
