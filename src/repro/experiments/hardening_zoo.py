"""Hardening zoo: the protection x workload matrix across the zoo's cost
spectrum.

For each workload (the nn suite's GEMM/conv/attention plus two Rodinia
controls) and each hardening scheme (range < abft < dmr < tmr, in
overhead order), run a software-level FI campaign with SDC anatomy on and
report:

* the raw SDC rate and its **critical** residual (quality-metric CRITICAL
  SDCs that survive the scheme),
* the SDC -> DUE **conversion rate** ``1 - sdc_hardened / sdc_plain``
  (negative if a scheme somehow increases SDCs; schemes that correct
  rather than detect — TMR, ABFT on a located element — convert SDCs to
  MASKED, which this measure counts the same way: the SDC is gone),
* the fault-free **cycle overhead** of the scheme from a profiled run.

Scheme campaigns sample independent fault sets (the scheme name enters
the campaign seed tag), so per-cell comparisons are statistical, not
paired — the rates carry Wilson intervals in the report for exactly that
reason. ABFT protects only GEMM-shaped launches and range restriction
only kernels with registered bounds, so the Rodinia controls isolate
*coverage* effects: a scheme that cannot see a workload must leave its
SDC rate unchanged within noise.
"""

from __future__ import annotations

from repro.analysis.report import format_table, rate_with_ci
from repro.arch.config import tesla_v100_like
from repro.experiments.common import hardened_trials
from repro.fi import CampaignSpec, profile_app, run_campaign
from repro.hardening import hardening_scheme
from repro.kernels import get_application

#: (application, injected kernel) — nn workloads plus Rodinia controls.
WORKLOADS = (
    ("gemm", "gemm_tile"),
    ("conv2d", "conv2d_dir"),
    ("attention", "gemm_tile"),
    ("hotspot", "hotspot_k1"),
    ("va", "va_k1"),
)

#: Zoo schemes, cheapest first. ``None`` is the unprotected baseline.
SCHEMES = (None, "range", "abft", "dmr", "tmr")

_SEED = 7


def _cell(app_name, kernel, scheme, config, trials, workers):
    app = get_application(app_name)
    spec = CampaignSpec(
        level="sw", app=app, kernel=kernel, config=config,
        trials=trials, seed=_SEED, workers=workers, sdc_anatomy=True,
        harden=scheme,
    )
    result = run_campaign(spec)
    counts = result.counts
    n = counts.classified
    anatomy = result.sdc_anatomy or {}
    return {
        "trials": n,
        "masked": counts.masked,
        "sdc": counts.sdc,
        "due": counts.due,
        "timeout": counts.timeout,
        "sdc_rate": counts.sdc / n if n else 0.0,
        "critical": int(anatomy.get("critical", counts.sdc)),
        "critical_rate": (int(anatomy.get("critical", counts.sdc)) / n
                          if n else 0.0),
    }


def _overhead(app_name, scheme, config):
    """Fault-free cycle cost of the scheme relative to the plain run."""
    plain = profile_app(get_application(app_name), config).total_cycles
    factory = hardening_scheme(scheme) if scheme else None
    hardened = profile_app(get_application(app_name), config,
                           factory).total_cycles
    return hardened / plain if plain else 1.0


def data(trials: int | None = None, workers: int | None = None):
    """The full matrix: ``(app, scheme) -> cell metrics``."""
    if trials is None:
        trials = hardened_trials()
    config = tesla_v100_like()
    cells: dict[tuple[str, str | None], dict] = {}
    for app_name, kernel in WORKLOADS:
        for scheme in SCHEMES:
            cell = _cell(app_name, kernel, scheme, config, trials, workers)
            cell["overhead"] = _overhead(app_name, scheme, config)
            cells[(app_name, scheme)] = cell
    for app_name, _ in WORKLOADS:
        base = cells[(app_name, None)]
        for scheme in SCHEMES:
            cell = cells[(app_name, scheme)]
            if base["sdc_rate"] > 0:
                cell["conversion"] = 1.0 - cell["sdc_rate"] / base["sdc_rate"]
            else:
                cell["conversion"] = 0.0
    return cells


def run(trials: int | None = None, workers: int | None = None) -> str:
    cells = data(trials, workers)
    rows = []
    for app_name, _ in WORKLOADS:
        for scheme in SCHEMES:
            cell = cells[(app_name, scheme)]
            n = cell["trials"]
            rows.append([
                app_name,
                scheme or "(plain)",
                rate_with_ci(cell["sdc"], n),
                rate_with_ci(cell["critical"], n),
                rate_with_ci(cell["due"] + cell["timeout"], n),
                ("-" if scheme is None
                 else f"{cell['conversion'] * 100:+.0f}%"),
                f"{cell['overhead']:.2f}x",
            ])
    table = format_table(
        ["workload", "scheme", "SDC", "critical SDC", "DUE",
         "SDC converted", "cycles"],
        rows,
    )
    abft = cells[("gemm", "abft")]
    headline = (
        f"ABFT on GEMM: {abft['conversion'] * 100:.0f}% of baseline SDCs "
        f"removed (located single-element corruptions are corrected "
        f"in place), {rate_with_ci(abft['critical'], abft['trials'])} "
        f"critical residual, {abft['overhead']:.2f}x cycles."
    )
    return (
        "== Hardening zoo: protection x workload across the zoo ==\n"
        f"{table}\n\n{headline}"
    )
