"""Adaptive two-level campaigns: the fixed grid's CI at a fraction of its trials.

The fixed experiment grid spends the same ``trials`` on every
(app, kernel, structure) cell, so every cell ends with at worst the
``halfwidth(trials/2, trials)`` Wilson half-width on its failure rate —
and most cells (the mostly-masked caches) converge far earlier, burning
microarch trials that buy no precision. This experiment runs the suite
both ways at matched precision: the fixed grid, and the two-level
adaptive path (:func:`repro.fi.plan_suite` steering a global budget with
static-ACE and software-pilot priors, :class:`repro.fi.StopRule`
stopping each cell once its Wilson interval is as tight as the fixed
grid's worst case). It reports per-app trial spend, the achieved
half-widths, and how far the app-level AVF estimates drift — the
two-level validation move of Hari et al. (PAPERS.md) applied to
campaign *budgeting* rather than SDC modelling.

Both sides share seed streams (adaptive trial k replays fixed trial k),
so the comparison isolates the scheduling policy.
"""

from __future__ import annotations

from repro.arch.config import quadro_gv100_like
from repro.arch.structures import Structure
from repro.config import DEFAULT_MIN_TRIALS
from repro.experiments.common import APP_ORDER, ProgressFactory, app_label
from repro.fi import (
    CampaignSpec,
    StopRule,
    avf_of_application,
    avf_of_chip,
    default_trials,
    plan_suite,
    profile_app,
    run_campaign,
    run_plan,
)
from repro.kernels import all_applications
from repro.utils.stats import halfwidth


def _achieved(result, confidence: float = 0.99) -> float:
    """Wilson half-width a finished cell achieved on its failure rate."""
    counts = result.counts
    failures = counts.sdc + counts.timeout + counts.due
    n = max(counts.classified, 1)
    return halfwidth(failures, n, confidence)


def data(
    trials: int | None = None,
    apps: "list[str] | None" = None,
    workers: int | None = None,
    progress_factory: ProgressFactory | None = None,
) -> dict:
    """Run the suite fixed and adaptive at matched CI; return the ledger."""
    if trials is None:
        trials = default_trials()
    seed = 1
    min_trials = min(DEFAULT_MIN_TRIALS, trials)
    # The precision every fixed cell is guaranteed: the Wilson half-width
    # at the variance-maximising p=1/2. Cells with tamer rates beat it;
    # no cell does worse.
    target = halfwidth(trials // 2, trials)
    rule = StopRule(ci_halfwidth=target, min_trials=min_trials)
    uarch_config = quadro_gv100_like()
    applications = [a for a in all_applications()
                    if apps is None or a.name in apps]

    # Fixed side: the plain uarch grid (cache-shared with collect_suite
    # at matching trials/seed). Profiles are simulated lazily and shared
    # across an app's cells, as in collect_suite.
    fixed: dict[tuple[str, str], dict[Structure, object]] = {}
    for app in applications:
        profile_box: list = []

        def supplier(_app=app, _box=profile_box):
            if not _box:
                _box.append(profile_app(_app, uarch_config))
            return _box[0]

        for kernel in app.kernel_names:
            fixed[(app.name, kernel)] = {
                s: run_campaign(
                    CampaignSpec(level="uarch", app=app, kernel=kernel,
                                 structure=s, config=uarch_config,
                                 trials=trials, seed=seed, workers=workers),
                    profile_supplier=supplier,
                    progress=(progress_factory(
                        f"{app.name}/{kernel}/uarch-{s.value} (fixed)")
                        if progress_factory else None),
                )
                for s in Structure
            }

    # Adaptive side: same global spend, two-level allocation, CI stop.
    n_cells = sum(len(v) for v in fixed.values())
    plan = plan_suite(budget=trials * n_cells, apps=apps,
                      pilot_trials=min(8, trials), seed=seed,
                      min_trials=min_trials, workers=workers)
    # min_ceiling=trials: a cell whose prior under-budgeted it may keep
    # sampling up to the fixed grid's per-cell count, so no cell ends
    # wider than the fixed grid could have left it.
    adaptive = run_plan(plan, rule, workers=workers, min_ceiling=trials,
                        progress_factory=progress_factory)

    rows: dict[str, dict] = {}
    fixed_worst = 0.0
    adaptive_worst = 0.0
    max_avf_delta = 0.0
    for app in applications:
        fixed_avf: dict[str, object] = {}
        adaptive_avf: dict[str, object] = {}
        cycles: dict[str, int] = {}
        fixed_spend = 0
        adaptive_spend = 0
        for kernel in app.kernel_names:
            f_cell = fixed[(app.name, kernel)]
            a_cell = {s: adaptive[(app.name, kernel, s.value)]
                      for s in Structure}
            fixed_avf[kernel] = avf_of_chip(f_cell, uarch_config)
            adaptive_avf[kernel] = avf_of_chip(a_cell, uarch_config)
            cycles[kernel] = next(iter(f_cell.values())).kernel_cycles
            fixed_spend += sum(r.counts.total for r in f_cell.values())
            adaptive_spend += sum(r.counts.total for r in a_cell.values())
            fixed_worst = max(fixed_worst,
                              *(_achieved(r) for r in f_cell.values()))
            adaptive_worst = max(adaptive_worst,
                                 *(_achieved(r) for r in a_cell.values()))
        f_total = avf_of_application(fixed_avf, cycles).total
        a_total = avf_of_application(adaptive_avf, cycles).total
        max_avf_delta = max(max_avf_delta, abs(f_total - a_total))
        rows[app.name] = {
            "fixed_trials": fixed_spend,
            "adaptive_trials": adaptive_spend,
            "fixed_avf": f_total,
            "adaptive_avf": a_total,
        }

    fixed_total = sum(r["fixed_trials"] for r in rows.values())
    adaptive_total = sum(r["adaptive_trials"] for r in rows.values())
    return {
        "trials": trials,
        "cells": n_cells,
        "target_halfwidth": target,
        "rows": rows,
        "fixed_uarch_trials": fixed_total,
        "adaptive_uarch_trials": adaptive_total,
        "saved_fraction": (1.0 - adaptive_total / fixed_total
                           if fixed_total else 0.0),
        "pilot_sw_trials": plan.pilot_cost,
        "fixed_worst_halfwidth": fixed_worst,
        "adaptive_worst_halfwidth": adaptive_worst,
        "max_avf_delta": max_avf_delta,
    }


def run(trials: int | None = None) -> str:
    d = data(trials)
    lines = ["== Adaptive two-level campaigns vs the fixed grid =="]
    lines.append(
        f"matched 99% CI half-width target {d['target_halfwidth']:.3f} "
        f"(fixed grid's worst case at n={d['trials']})")
    lines.append(f"{'app':<12} {'fixed':>7} {'adaptive':>9} {'saved':>7} "
                 f"{'AVF fixed':>10} {'AVF adapt':>10}")
    for app in APP_ORDER:
        if app not in d["rows"]:
            continue
        r = d["rows"][app]
        saved = (1.0 - r["adaptive_trials"] / r["fixed_trials"]
                 if r["fixed_trials"] else 0.0)
        lines.append(
            f"{app_label(app):<12} {r['fixed_trials']:>7} "
            f"{r['adaptive_trials']:>9} {saved:>7.0%} "
            f"{r['fixed_avf']:>10.4%} {r['adaptive_avf']:>10.4%}")
    lines.append(
        f"total microarch trials: {d['fixed_uarch_trials']} fixed -> "
        f"{d['adaptive_uarch_trials']} adaptive "
        f"({d['saved_fraction']:.0%} saved over {d['cells']} cells), "
        f"steered by {d['pilot_sw_trials']} software-level pilot trials")
    lines.append(
        f"worst achieved half-width: fixed {d['fixed_worst_halfwidth']:.3f}, "
        f"adaptive {d['adaptive_worst_halfwidth']:.3f}")
    lines.append(
        f"max app-level |AVF drift|: {d['max_avf_delta']:.4%}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
