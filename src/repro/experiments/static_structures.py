"""Static SMEM + control-state estimates vs campaign AVFs: rank agreement.

The RF estimator's validation move (:mod:`repro.experiments.static_vf`)
extended to the other two structure families the campaigns target:

* **SMEM** — ``static_structure_report`` predicts each kernel's AVF-SMEM
  as ``SMEM ACE x SMEM derating``, where the ACE fraction comes from
  store-to-last-load live intervals over the abstract interpreter's
  value sets (zero injections) and the derating from the launch geometry.
  Compared against the cached SMEM storage-target campaigns.
* **control** — the loop-trip-weighted PC/active-mask lifetime fraction,
  compared against control-target campaigns (parallelism-management
  state: PCs, active masks, barrier/scheduler registers; derating 1 —
  control state is always live).

Both comparisons ask the predictor question: does the static estimate
*rank* the applications the way fault injection does?
"""

from __future__ import annotations

from repro.analysis.trends import compare_trends, spearman
from repro.arch.config import quadro_gv100_like
from repro.arch.structures import Structure
from repro.experiments.common import APP_ORDER, app_label, collect_suite
from repro.fi import CampaignSpec, avf_of_structure, run_campaign
from repro.kernels import kernel_programs
from repro.staticanalysis import static_structure_report
from repro.staticanalysis.launches import suite_launch_contexts
from repro.utils.stats import weighted_mean

#: The comparison's structure families.
FAMILIES = ("smem", "control")


def data(trials: int | None = None):
    """family -> (static_estimate, campaign_avf) per application."""
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    programs = kernel_programs()
    config = quadro_gv100_like()
    contexts = suite_launch_contexts()

    static: dict[str, dict[str, float]] = {f: {} for f in FAMILIES}
    campaign: dict[str, dict[str, float]] = {f: {} for f in FAMILIES}
    for app in APP_ORDER:
        items = {
            kernel: d for (a, kernel), d in suite.kernels.items() if a == app
        }
        if not items:
            continue
        weights = [max(d.cycles, 1) for d in items.values()]
        reports = {
            kernel: static_structure_report(
                programs[(app, kernel)], contexts[(app, kernel)], config)
            for kernel in items
        }
        static["smem"][app] = weighted_mean(
            [reports[k].avf_smem for k in items], weights)
        static["control"][app] = weighted_mean(
            [reports[k].control_ace for k in items], weights)
        campaign["smem"][app] = weighted_mean(
            [avf_of_structure(d.uarch[Structure.SMEM]).total
             for d in items.values()], weights)
        control_runs = [
            run_campaign(CampaignSpec(level="uarch", app=app, kernel=kernel,
                                      target="control", trials=trials))
            for kernel in items
        ]
        campaign["control"][app] = weighted_mean(
            [avf_of_structure(r).total for r in control_runs], weights)
    return ({f: static[f] for f in FAMILIES},
            {f: campaign[f] for f in FAMILIES})


def run(trials: int | None = None) -> str:
    static, campaign = data(trials)
    lines = ["== Static SMEM/control estimates vs campaign AVFs =="]
    for family in FAMILIES:
        s, c = static[family], campaign[family]
        lines.append(f"-- {family} --")
        lines.append(f"{'app':<12} {'static est':>10} {'campaign':>10}")
        for app in s:
            lines.append(
                f"{app_label(app):<12} {s[app]:>10.4%} {c[app]:>10.4%}")
        rho = spearman(s, c)
        cmp = compare_trends(s, c)
        lines.append(
            f"Spearman rank correlation: {rho:+.3f} over {len(s)} apps; "
            f"pairwise trends: {cmp.consistent} consistent / "
            f"{cmp.opposite} opposite")
    lines.append(
        "static side: 0 injections (abstract interpretation + CFG weights); "
        "campaign side: SMEM storage-target and control-target FI")
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
