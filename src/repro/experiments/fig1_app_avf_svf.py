"""Figure 1: application-level AVF (bottom) vs SVF (top).

Stacked SDC/Timeout/DUE per application. The paper's headline qualitative
claims, checked by the bench: SVF absolute values are far larger than AVF
(hardware masking), and several application pairs rank oppositely.
"""

from __future__ import annotations

from repro.analysis.report import stacked_row
from repro.experiments.common import app_label, collect_suite


def data(trials: int | None = None):
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    return suite.app_avf(), suite.app_svf()


def run(trials: int | None = None) -> str:
    avf, svf = data(trials)
    lines = ["== Figure 1: application-level AVF vs SVF =="]
    lines.append("-- SVF (software-level, V100-like) --")
    scale = max(b.total for b in svf.values()) or 1.0
    for app, b in svf.items():
        lines.append(stacked_row(app_label(app), b, scale))
    lines.append("-- AVF (cross-layer, GV100-like) --")
    scale = max(b.total for b in avf.values()) or 1.0
    for app, b in avf.items():
        lines.append(stacked_row(app_label(app), b, scale))
    lines.append(
        "note: AVF magnitudes are far below SVF because AVF includes "
        "hardware masking (paper: different vertical scales)."
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
