"""Permanent & intermittent faults: outcome mixes across fault models.

The transient single-event-upset model behind the paper's AVF figures is
one point in a larger fault space: aging and manufacturing defects present
as *permanent* stuck-at bits, marginal circuits as *intermittent* faults
that pin a bit only during duty windows. Related work (Guerrero-Balaguera
et al.) shows permanent faults in the GPU's parallelism-management units —
scheduler, barrier and PC state rather than data arrays — produce a very
different failure profile, including hangs.

This driver runs the same kernels under every fault model on both site
families (storage = the RF, control = parallelism-management state) and
compares the outcome mixes (Masked/SDC/Timeout/DUE). Hangs induced by
control-state corruption are converted to Timeout by the trial watchdog
(``REPRO_HANG_FACTOR``), so campaigns complete instead of wedging.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.fi.avf import avf_by_fault_model, outcome_mix
from repro.fi import CampaignResult, CampaignSpec, run_campaign
from repro.fi.gpufi import FAULT_MODELS, FAULT_TARGETS

#: Applications for the model comparison: one regular data-parallel kernel
#: and one irregular, control-flow-heavy one.
APPS = ("va", "bfs")


def data(trials: int | None = None, apps: tuple[str, ...] | None = None):
    """model -> target -> app -> CampaignResult for the whole grid."""
    grid: dict[str, dict[str, dict[str, CampaignResult]]] = {}
    base = CampaignSpec(level="uarch", app="va", trials=trials)
    for model in FAULT_MODELS:
        grid[model] = {}
        for target in FAULT_TARGETS:
            grid[model][target] = {}
            for app in apps or APPS:
                spec = base.derive(
                    app=app,
                    structure="rf" if target == "storage" else None,
                    fault_model=model,
                    target=target,
                )
                grid[model][target][app] = run_campaign(spec)
    return grid


def _mix_row(label: str, result: CampaignResult) -> list:
    mix = outcome_mix(result)
    return [label, f"{mix['masked']:.1%}", f"{mix['sdc']:.1%}",
            f"{mix['timeout']:.1%}", f"{mix['due']:.1%}",
            result.counts.classified]


def run(trials: int | None = None, apps: tuple[str, ...] | None = None) -> str:
    apps = apps or APPS
    grid = data(trials, apps)

    lines = ["== Permanent & intermittent fault models: outcome mixes =="]
    for target in FAULT_TARGETS:
        site = ("RF storage bits" if target == "storage"
                else "parallelism-management state")
        lines.append(f"-- target: {target} ({site}) --")
        rows = []
        for app in apps:
            for model in FAULT_MODELS:
                rows.append(_mix_row(f"{app}/{model}",
                                     grid[model][target][app]))
        lines.append(format_table(
            ["app/model", "masked", "sdc", "timeout", "due", "n"], rows))

    lines.append("-- RF AVF by fault model (derated, total of "
                 "SDC+Timeout+DUE) --")
    rows = []
    for app in apps:
        per_model = {m: grid[m]["storage"][app] for m in FAULT_MODELS}
        avfs = avf_by_fault_model(per_model)
        rows.append([app] + [f"{avfs[m].total:.4f}" for m in FAULT_MODELS])
    lines.append(format_table(["app", *FAULT_MODELS], rows))

    # Headline deltas the tables encode.
    def _frac(model, target, key):
        mixes = [outcome_mix(grid[model][target][a]) for a in apps]
        return sum(m[key] for m in mixes) / len(mixes)

    s0_mask = _frac("stuck0", "storage", "masked")
    s1_mask = _frac("stuck1", "storage", "masked")
    c_timeout = max(_frac(m, "control", "timeout") for m in FAULT_MODELS)
    s_timeout = max(_frac(m, "storage", "timeout") for m in FAULT_MODELS)
    lines.append(
        f"note: stuck-at polarity matters on storage (stuck-at-0 masks "
        f"{s0_mask:.0%}, stuck-at-1 {s1_mask:.0%} — pinning a bit of "
        f"mostly-zero data is often a no-op, pinning it high re-corrupts "
        f"every overwrite); Timeouts come from control-state faults "
        f"(up to {c_timeout:.0%} vs {s_timeout:.0%} on storage), each one "
        f"a hang the watchdog reclaimed.")
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
