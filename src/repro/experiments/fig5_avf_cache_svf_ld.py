"""Figure 5: AVF-Cache (L1D+L1T+L2, bottom) vs SVF-LD (loads only, top).

Memory-related sub-metrics diverge even more than the register-file
comparison: the paper reports 58 % opposite pairs here.
"""

from __future__ import annotations

from repro.analysis.report import stacked_row
from repro.analysis.trends import compare_trends
from repro.experiments.common import app_label, collect_suite


def data(trials: int | None = None):
    suite = collect_suite(hardened=False, trials=trials, with_ld=True)
    return suite.app_breakdown("avf_cache"), suite.app_breakdown("svf_ld")


def run(trials: int | None = None) -> str:
    avf_cache, svf_ld = data(trials)
    lines = ["== Figure 5: AVF-Cache vs SVF-LD (application level) =="]
    lines.append("-- SVF-LD (bit flips in loaded values only) --")
    scale = max(b.total for b in svf_ld.values()) or 1.0
    for app, b in svf_ld.items():
        lines.append(stacked_row(app_label(app), b, scale))
    lines.append("-- AVF-Cache (L1D + L1T + L2) --")
    scale = max(b.total for b in avf_cache.values()) or 1.0
    for app, b in avf_cache.items():
        lines.append(stacked_row(app_label(app), b, scale))
    cmp = compare_trends(
        {a: b.total for a, b in avf_cache.items()},
        {a: b.total for a, b in svf_ld.items()},
    )
    lines.append(
        f"trend comparison: {cmp.consistent} consistent / {cmp.opposite} "
        f"opposite pairs (paper: 23/32)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
