"""Footnote-1 speed claim: AVF campaigns cost far more machine time than SVF
campaigns (the paper: 1,258 single-core machine days vs 10).

In this reproduction both injectors run on the same simulator, so the gap is
structural rather than two-orders-of-magnitude: an AVF characterisation
needs 5 structure campaigns per kernel (and the cycle-level machinery),
while SVF needs a single campaign. This experiment measures per-trial wall
time for both and reports the campaign-level ratio.
"""

from __future__ import annotations

import time

from repro.arch.config import quadro_gv100_like, tesla_v100_like
from repro.arch.structures import Structure
from repro.fi import CampaignSpec, run_campaign
from repro.kernels import get_application


def data(trials: int = 12, app_name: str = "hotspot"):
    app = get_application(app_name)
    kernel = app.kernel_names[0]
    base = CampaignSpec(level="uarch", app=app, kernel=kernel,
                        config=quadro_gv100_like(), trials=trials,
                        use_cache=False)
    t0 = time.perf_counter()
    for structure in Structure:
        run_campaign(base.derive(structure=structure))
    avf_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_campaign(base.derive(level="sw", config=tesla_v100_like()))
    svf_time = time.perf_counter() - t0
    return {
        "avf_seconds": avf_time,
        "svf_seconds": svf_time,
        "ratio": avf_time / svf_time if svf_time else float("inf"),
        "trials": trials,
    }


def run(trials: int = 12) -> str:
    d = data(trials)
    return (
        "== Speed gap: full AVF characterisation vs one SVF campaign ==\n"
        f"AVF (5 structures x {d['trials']} trials): {d['avf_seconds']:.2f} s\n"
        f"SVF (1 campaign x {d['trials']} trials):   {d['svf_seconds']:.2f} s\n"
        f"ratio: {d['ratio']:.1f}x (paper: ~126x machine-days gap; here both "
        "run on the same simulator, so the structural 5-6x remains)"
    )


if __name__ == "__main__":
    print(run())
