"""Section V-B extension: does the register reuse analyzer fix SVF?

Runs three software-level fault models against representative kernels:

* **dest** — NVBitFI's destination-register model (the paper's SVF),
* **src-transient** — a source-register fault affecting exactly one dynamic
  instruction (the naive model the paper criticises),
* **src-sticky** — the same fault left in place until the register is
  rewritten, i.e. the reuse-analyzer-augmented model the paper proposes.

The expected shape: sticky source faults are at least as damaging as
transient ones (the reuse replication factor of Figure 12), narrowing — but
not closing — the gap to hardware-level behaviour.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.arch.config import tesla_v100_like
from repro.fi import CampaignSpec, profile_app, run_campaign
from repro.kernels import get_application

KERNELS = (
    ("va", "va_k1"),
    ("hotspot", "hotspot_k1"),
    ("lud", "lud_k2"),
    ("kmeans", "kmeans_k2"),
)


def data(trials: int | None = None):
    config = tesla_v100_like()
    rows = {}
    for app_name, kernel in KERNELS:
        app = get_application(app_name)
        profile = profile_app(app, config)
        base = CampaignSpec(level="sw", app=app, kernel=kernel,
                            config=config, trials=trials, seed=21)

        def cell(level):
            return run_campaign(base.derive(level=level), profile=profile)

        dest = cell("sw")
        transient = cell("src")
        sticky = cell("src-sticky")
        rows[kernel] = {
            "dest": dest.counts.failure_rate,
            "src_transient": transient.counts.failure_rate,
            "src_sticky": sticky.counts.failure_rate,
        }
    return rows


def run(trials: int | None = None) -> str:
    rows = data(trials)
    table = format_table(
        ["kernel", "SVF dest %", "SVF src-transient %", "SVF src-sticky %"],
        [
            [kernel, f"{r['dest'] * 100:6.2f}",
             f"{r['src_transient'] * 100:6.2f}",
             f"{r['src_sticky'] * 100:6.2f}"]
            for kernel, r in rows.items()
        ],
    )
    return (
        "== SVF fault-model extension: register-reuse-aware source "
        "injection ==\n" + table
        + "\nsticky >= transient quantifies the replication factor the "
        "paper's register reuse analyzer recovers."
    )


if __name__ == "__main__":
    print(run())
