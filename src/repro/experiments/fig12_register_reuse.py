"""Figure 12: the register reuse analyzer.

The paper's illustrative SASS example shows a fault in the destination
register of one instruction that should be replicated into every subsequent
read until the register is rewritten. This experiment (a) reproduces the
static illustration on real kernel code and (b) quantifies dynamic register
reuse across the whole suite — the replication factor a single-instruction
software fault model under-counts.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.reuse import RegisterReuseAnalyzer, affected_instructions
from repro.arch.config import quadro_gv100_like
from repro.kernels import all_applications
from repro.kernels.vectoradd import _VA_K1


def static_example() -> str:
    """The Fig. 12 illustration on the VA kernel: a fault in R4 (the byte
    offset) written by SHL propagates into the three address additions."""
    program = _VA_K1
    target_index = next(
        i for i, ins in enumerate(program.instructions) if ins.dst == 4
    )
    affected = affected_instructions(program, target_index, 4)
    lines = [f"fault target: /*{target_index:04d}*/ "
             f"{program[target_index].render()}"]
    for idx in affected:
        lines.append(f"  affected -> /*{idx:04d}*/ {program[idx].render()}")
    return "\n".join(lines)


def data():
    analyzer = RegisterReuseAnalyzer(quadro_gv100_like())
    return {app.name: analyzer.analyze(app) for app in all_applications()}


def run(trials: int | None = None) -> str:
    reports = data()
    table = format_table(
        ["application", "mean reads/write", "multi-read writes", "dead writes"],
        [
            [name, f"{r.mean_reads_per_write:5.2f}",
             f"{r.fraction_multi_read:6.1%}", f"{r.fraction_dead_write:6.1%}"]
            for name, r in reports.items()
        ],
    )
    return (
        "== Figure 12: register reuse analyzer ==\n"
        "-- static illustration (paper's Fig. 12, on va_k1) --\n"
        + static_example()
        + "\n-- dynamic reuse across the suite --\n" + table
        + "\nreads/write > 1 means a register fault affects multiple "
        "dynamic instructions — the effect single-instruction SVF models miss."
    )


if __name__ == "__main__":
    print(run())
