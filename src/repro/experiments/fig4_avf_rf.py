"""Figure 4: AVF-RF (register file only, bottom) vs SVF (top) per application.

The paper's point: even restricted to the register file — the structure
closest to SVF's fault model — AVF and SVF still disagree on 42 % of pairs,
because AVF covers dead registers and SVF only live destination values.
"""

from __future__ import annotations

from repro.analysis.report import stacked_row
from repro.analysis.trends import compare_trends
from repro.experiments.common import app_label, collect_suite


def data(trials: int | None = None):
    suite = collect_suite(hardened=False, trials=trials, with_ld=False)
    return suite.app_breakdown("avf_rf"), suite.app_svf()


def run(trials: int | None = None) -> str:
    avf_rf, svf = data(trials)
    lines = ["== Figure 4: AVF-RF vs SVF (application level) =="]
    lines.append("-- SVF --")
    scale = max(b.total for b in svf.values()) or 1.0
    for app, b in svf.items():
        lines.append(stacked_row(app_label(app), b, scale))
    lines.append("-- AVF-RF --")
    scale = max(b.total for b in avf_rf.values()) or 1.0
    for app, b in avf_rf.items():
        lines.append(stacked_row(app_label(app), b, scale))
    cmp = compare_trends(
        {a: b.total for a, b in avf_rf.items()},
        {a: b.total for a, b in svf.items()},
    )
    lines.append(
        f"trend comparison: {cmp.consistent} consistent / {cmp.opposite} "
        f"opposite pairs (paper: 32/23)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(run())
