"""Append-only trial journal: checkpoint/resume for FI campaigns.

Real FI harnesses journal every injection result before moving to the next
one (DrSEUs logs each trial to a database; DAVOS checkpoints every SBFI
phase), so a crashed or preempted campaign never redoes completed work.
This module provides the same guarantee for ``repro`` campaigns:

* Each completed trial is appended as one JSON line to
  ``.repro_cache/journal/<key>.jsonl`` and flushed+fsynced before the next
  trial starts, so at most the in-flight trial is lost to a crash.
* ``load()`` is crash-tolerant: a SIGKILL mid-append leaves a truncated
  final line, which is detected and dropped (the journal file is compacted
  back to its valid prefix so later appends stay well-formed).
* Completed campaigns delete their journal; the final tally lives in the
  regular result cache instead.

Journal records are dicts with an ``event`` field:

* ``{"event": "meta", "tag": t, "root_seed": s, "trials": n, ...}`` —
  written once when the journal is created; identifies the campaign the
  journal belongs to so ``repro.cli campaign status`` can tell a resumable
  journal from a stale one (changed ``REPRO_TRIALS``, seed, or cache
  version) without knowing the campaign's cache key preimage.
* ``{"event": "trial", "trial": i, "seed": s, "outcome": o, "cycles": c}``
  — trial ``i`` completed with outcome ``o`` (a :class:`FaultOutcome`
  value string).
* ``{"event": "crash", "trial": i, "seed": s, "error": r, "traceback": t,
  "retry": bool}`` — an attempt at trial ``i`` raised an unexpected
  exception; diagnostic only, never replayed into tallies.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import NamedTuple

from repro.config import get_settings
from repro.log import get_logger

log = get_logger(__name__)


def cache_dir() -> Path:
    """Campaign cache location (``REPRO_CACHE_DIR``, default ``.repro_cache``)."""
    return get_settings().cache_dir


def journal_dir() -> Path:
    return cache_dir() / "journal"


class CampaignJournal:
    """One campaign's append-only JSONL trial log, keyed by its cache key."""

    def __init__(self, key: str, directory: Path | None = None):
        self.key = key
        self.path = (directory if directory is not None else journal_dir()) \
            / f"{key}.jsonl"

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> list[dict]:
        """Return all valid records, dropping a torn tail if the writer died
        mid-append (the file is compacted so future appends stay valid)."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as exc:
            log.warning("journal %s unreadable (%s); starting fresh",
                        self.path, exc)
            return []
        records: list[dict] = []
        valid_bytes = 0
        for line in raw.splitlines(keepends=True):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                log.warning(
                    "journal %s has a torn record after %d entries "
                    "(interrupted append); dropping the tail",
                    self.path.name, len(records))
                break
            if not isinstance(record, dict):
                log.warning("journal %s entry %d is not an object; "
                            "dropping the tail", self.path.name, len(records))
                break
            records.append(record)
            valid_bytes += len(line)
        if valid_bytes != len(raw):
            self._compact(raw[:valid_bytes])
        return records

    def _compact(self, valid_prefix: bytes) -> None:
        """Atomically rewrite the journal to its valid prefix."""
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                       prefix=f".{self.key}.", suffix=".tmp")
            with os.fdopen(fd, "wb") as f:
                f.write(valid_prefix)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            log.warning("could not compact journal %s: %s", self.path, exc)

    def append(self, record: dict) -> None:
        """Append one record and force it to disk before returning."""
        self.append_many([record])

    def append_many(self, records: list[dict]) -> None:
        """Append several records with a single flush+fsync.

        Used by the parallel execution pool when a burst of out-of-order
        trial results becomes journalable at once: every record still hits
        the disk before the method returns, but the batch pays for one
        fsync instead of one per record. The file remains a valid prefix
        at every instant (records are written whole lines, in order).
        """
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            for record in records:
                f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def discard(self) -> None:
        """Delete the journal (campaign finished, or its log is stale)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            log.warning("could not delete journal %s: %s", self.path, exc)


class JournalInfo(NamedTuple):
    """One in-flight campaign journal, as reported by :func:`list_journals`."""

    key: str
    trials: int  # completed trial records
    crashes: int  # crash events (diagnostic)
    meta: dict | None  # the journal's "meta" record, if it has one
    records: list[dict]  # the trial records, for validity checks


def list_journals(directory: Path | None = None) -> list[JournalInfo]:
    """Inspect in-flight campaigns: one :class:`JournalInfo` per journal
    file, sorted by key. (Tuple-compatible with the historical
    ``(key, trials, crashes)`` shape.)"""
    d = directory if directory is not None else journal_dir()
    out: list[JournalInfo] = []
    if not d.is_dir():
        return out
    for path in sorted(d.glob("*.jsonl")):
        records = CampaignJournal(path.stem, d).load()
        trials = [r for r in records if r.get("event") == "trial"]
        crashes = sum(1 for r in records if r.get("event") == "crash")
        meta = next((r for r in records if r.get("event") == "meta"), None)
        out.append(JournalInfo(path.stem, len(trials), crashes, meta, trials))
    return out
