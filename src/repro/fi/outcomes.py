"""Fault-effect classification.

The four classes of the paper (Section II-A):

* **Masked** — no observable effect.
* **SDC** — run completes, output differs bitwise from the fault-free run.
* **Timeout** — run exceeds the cycle budget derived from the fault-free run.
* **DUE** — a catastrophic event aborts execution (illegal memory access,
  deadlock, control flow off the program, TMR vote failure, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultOutcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    TIMEOUT = "timeout"
    DUE = "due"


@dataclass
class OutcomeCounts:
    """Tally of outcomes over a statistical campaign."""

    masked: int = 0
    sdc: int = 0
    timeout: int = 0
    due: int = 0

    def add(self, outcome: FaultOutcome) -> None:
        if outcome is FaultOutcome.MASKED:
            self.masked += 1
        elif outcome is FaultOutcome.SDC:
            self.sdc += 1
        elif outcome is FaultOutcome.TIMEOUT:
            self.timeout += 1
        else:
            self.due += 1

    @property
    def total(self) -> int:
        return self.masked + self.sdc + self.timeout + self.due

    def rate(self, outcome: FaultOutcome) -> float:
        n = self.total
        if n == 0:
            return 0.0
        return {
            FaultOutcome.MASKED: self.masked,
            FaultOutcome.SDC: self.sdc,
            FaultOutcome.TIMEOUT: self.timeout,
            FaultOutcome.DUE: self.due,
        }[outcome] / n

    @property
    def failure_rate(self) -> float:
        """FR = Pct(SDC) + Pct(Timeout) + Pct(DUE)."""
        n = self.total
        return (self.sdc + self.timeout + self.due) / n if n else 0.0

    def breakdown(self) -> dict[str, float]:
        return {o.value: self.rate(o) for o in FaultOutcome}

    def to_dict(self) -> dict[str, int]:
        return {
            "masked": self.masked,
            "sdc": self.sdc,
            "timeout": self.timeout,
            "due": self.due,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "OutcomeCounts":
        return cls(
            masked=int(d["masked"]),
            sdc=int(d["sdc"]),
            timeout=int(d["timeout"]),
            due=int(d["due"]),
        )

    def __add__(self, other: "OutcomeCounts") -> "OutcomeCounts":
        return OutcomeCounts(
            self.masked + other.masked,
            self.sdc + other.sdc,
            self.timeout + other.timeout,
            self.due + other.due,
        )
