"""Fault-effect classification.

The four classes of the paper (Section II-A):

* **Masked** — no observable effect.
* **SDC** — run completes, output differs bitwise from the fault-free run.
* **Timeout** — run exceeds the cycle budget derived from the fault-free run.
* **DUE** — a catastrophic event aborts execution (illegal memory access,
  deadlock, control flow off the program, TMR vote failure, ...).

Plus one infrastructure class outside the paper's taxonomy:

* **Crash** — the *harness* failed, not the simulated fault: the trial
  raised an unexpected exception (neither :class:`SimTimeout` nor
  :class:`ExecutionError`) twice in a row. Crash trials are journaled and
  tallied so campaigns survive flaky applications, but they are excluded
  from the failure rate — they say nothing about the fault's effect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultOutcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    TIMEOUT = "timeout"
    DUE = "due"
    CRASH = "crash"  # infrastructure failure, not a fault effect


@dataclass
class OutcomeCounts:
    """Tally of outcomes over a statistical campaign."""

    masked: int = 0
    sdc: int = 0
    timeout: int = 0
    due: int = 0
    crash: int = 0

    def add(self, outcome: FaultOutcome) -> None:
        if outcome is FaultOutcome.MASKED:
            self.masked += 1
        elif outcome is FaultOutcome.SDC:
            self.sdc += 1
        elif outcome is FaultOutcome.TIMEOUT:
            self.timeout += 1
        elif outcome is FaultOutcome.CRASH:
            self.crash += 1
        else:
            self.due += 1

    @property
    def total(self) -> int:
        return self.masked + self.sdc + self.timeout + self.due + self.crash

    def rate(self, outcome: FaultOutcome) -> float:
        n = self.total
        if n == 0:
            return 0.0
        return {
            FaultOutcome.MASKED: self.masked,
            FaultOutcome.SDC: self.sdc,
            FaultOutcome.TIMEOUT: self.timeout,
            FaultOutcome.DUE: self.due,
            FaultOutcome.CRASH: self.crash,
        }[outcome] / n

    @property
    def classified(self) -> int:
        """Trials that produced a fault-effect class (i.e. everything but
        infrastructure crashes). Vulnerability math divides by this, not
        ``total``, so a flaky harness doesn't bias AVF/SVF downward."""
        return self.total - self.crash

    @property
    def failure_rate(self) -> float:
        """FR = Pct(SDC) + Pct(Timeout) + Pct(DUE), over classified trials."""
        n = self.classified
        return (self.sdc + self.timeout + self.due) / n if n else 0.0

    def breakdown(self) -> dict[str, float]:
        return {o.value: self.rate(o) for o in FaultOutcome}

    def to_dict(self) -> dict[str, int]:
        return {
            "masked": self.masked,
            "sdc": self.sdc,
            "timeout": self.timeout,
            "due": self.due,
            "crash": self.crash,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "OutcomeCounts":
        return cls(
            masked=int(d["masked"]),
            sdc=int(d["sdc"]),
            timeout=int(d["timeout"]),
            due=int(d["due"]),
            crash=int(d.get("crash", 0)),
        )

    def __add__(self, other: "OutcomeCounts") -> "OutcomeCounts":
        return OutcomeCounts(
            self.masked + other.masked,
            self.sdc + other.sdc,
            self.timeout + other.timeout,
            self.due + other.due,
            self.crash + other.crash,
        )
