"""Adaptive two-level campaign planning: stop early, spend trials wisely.

Fixed-budget campaigns run every cell for the same N trials even when the
Wilson interval on its failure rate converged long ago — and on this
suite the slowest kernels are ~7x more expensive per trial than the
fastest (EXPERIMENTS.md), so the over-sampled cells dominate wall-clock.
This module closes the gap from two directions, following Hari et al.,
"Estimating Silent Data Corruption Rates Using a Two-Level Model"
(PAPERS.md): cheap low-level estimates steer the expensive trials to
where the variance actually lives.

* :class:`StopRule` — CI-driven early stopping for a single campaign.
  The rule rides into :func:`repro.fi.runner.execute_trials` on
  ``CampaignSpec(stop_rule=...)`` (or ``REPRO_CI_HALFWIDTH``) and fires
  once the Wilson interval on the committed in-order trial prefix is at
  least as tight as requested, never before ``min_trials``. Because the
  committed prefix is identical at any worker count and across
  kill/resume, the stopping trial count is too.

* :func:`plan_suite` / :class:`SuitePlan` — two-level allocation of a
  global microarch trial budget across (app, kernel, structure) cells.
  Level one is cheap: the static ACE-style AVF estimate of
  :mod:`repro.staticanalysis.vf` (zero injections, Spearman +0.87
  against campaigns) combined with a small software-level pilot
  campaign per kernel (milliseconds per trial vs the uarch level's
  full-device simulation). Level two spends the real budget
  Neyman-style: each cell gets trials in proportion to its AVF
  aggregation weight times the binomial standard deviation
  ``sqrt(p(1-p))`` of its prior failure rate, floored at ``min_trials``.
  :func:`run_plan` then executes the cells as adaptive campaigns, so the
  stop rule claws back whatever the prior over-estimated.

The planner never touches campaign *identity*: specs without a stop rule
keep byte-identical cache keys, journals and tallies, and adaptive specs
derive their per-trial seeds from the same prefix-stable streams as the
fixed path (:func:`repro.utils.rng.spawn_seeds`), so a fixed 64-trial
cell and an adaptive cell that stops at 24 agree on trials 0..23.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import DEFAULT_MIN_TRIALS
from repro.errors import ConfigError
from repro.fi.outcomes import OutcomeCounts
from repro.log import get_logger
from repro.utils.stats import halfwidth

__all__ = [
    "DEFAULT_PILOT_TRIALS", "STOP_METRICS", "StopRule", "CellPlan",
    "SuitePlan", "plan_suite", "render_plan", "run_plan",
]

log = get_logger(__name__)

#: Outcome proportions a stop rule can track: ``failure`` is the paper's
#: FR (SDC + Timeout + DUE over classified trials), ``sdc`` the SDC
#: fraction alone.
STOP_METRICS = ("failure", "sdc")

#: Software-level pilot trials per kernel for the two-level prior. Eight
#: Laplace-smoothed trials are enough to separate "mostly masks" from
#: "mostly corrupts" — the prior only has to *rank* cells, the stop rule
#: corrects its magnitude.
DEFAULT_PILOT_TRIALS = 8


@dataclass(frozen=True)
class StopRule:
    """CI-driven early stopping for one campaign cell.

    ``satisfied(counts)`` is True once the ``confidence``-level Wilson
    interval on the chosen ``metric`` over the classified trials has a
    half-width of at most ``ci_halfwidth`` — and never before
    ``min_trials`` classified trials, guarding against the deceptively
    tight intervals of tiny all-masked samples.

    ``chunk`` only tunes the parallel scheduler's round size (how many
    trials are in flight beyond the committed prefix); it can change how
    much speculative work is discarded, never which trial the rule stops
    at, so it is excluded from campaign identity (:meth:`to_payload`).
    """

    ci_halfwidth: float
    min_trials: int = DEFAULT_MIN_TRIALS
    confidence: float = 0.99
    metric: str = "failure"
    chunk: int | None = None

    def __post_init__(self) -> None:
        if not (isinstance(self.ci_halfwidth, (int, float))
                and 0.0 < self.ci_halfwidth < 1.0):
            raise ConfigError(
                f"stop rule ci_halfwidth must be in (0, 1), "
                f"got {self.ci_halfwidth!r}")
        if not (isinstance(self.min_trials, int) and self.min_trials >= 1):
            raise ConfigError(
                f"stop rule min_trials must be a positive integer, "
                f"got {self.min_trials!r}")
        if self.metric not in STOP_METRICS:
            raise ConfigError(
                f"unknown stop metric {self.metric!r} "
                f"(known: {', '.join(STOP_METRICS)})")
        if self.chunk is not None and not (
                isinstance(self.chunk, int) and self.chunk >= 1):
            raise ConfigError(
                f"stop rule chunk must be a positive integer, "
                f"got {self.chunk!r}")
        try:
            halfwidth(0, 1, self.confidence)
        except ValueError as exc:
            raise ConfigError(f"stop rule confidence: {exc}") from None

    def _successes(self, counts: OutcomeCounts) -> int:
        if self.metric == "sdc":
            return counts.sdc
        return counts.sdc + counts.timeout + counts.due

    def satisfied(self, counts: OutcomeCounts) -> bool:
        """Is the CI on the committed prefix tight enough to stop?"""
        n = counts.classified
        if n < self.min_trials:
            return False
        return (halfwidth(self._successes(counts), n, self.confidence)
                <= self.ci_halfwidth)

    def achieved(self, counts: OutcomeCounts) -> float | None:
        """The half-width actually reached (None before any trials)."""
        n = counts.classified
        if n <= 0:
            return None
        return halfwidth(self._successes(counts), n, self.confidence)

    def to_payload(self) -> dict:
        """Identity-relevant fields for cache keys and result records."""
        return {"ci_halfwidth": self.ci_halfwidth,
                "min_trials": self.min_trials,
                "confidence": self.confidence,
                "metric": self.metric}


# ------------------------------------------------------ two-level planning

#: Prior attenuation from a kernel's software-visible corruption rate to
#: the per-trial failure rate of each microarch structure. Calibrated to
#: the suite's measured shape (EXPERIMENTS.md Fig. 10): RF faults land in
#: allocated registers (the static ACE fraction refines this per kernel),
#: SMEM lines are narrower but heavily reused, and cache lines are large,
#: short-lived and mostly clean. Only the *ranking* matters — the stop
#: rule corrects magnitudes cell by cell.
STRUCTURE_ATTENUATION = {
    "rf": 1.0,
    "smem": 0.5,
    "l1d": 0.15,
    "l1t": 0.15,
    "l2": 0.25,
}

#: Priors are clamped into this band: a cell the pilot never saw fail
#: still deserves a little budget (the floor), and sqrt(p(1-p)) is
#: symmetric around 0.5 anyway (the cap).
_PRIOR_FLOOR, _PRIOR_CAP = 0.005, 0.5


@dataclass(frozen=True)
class CellPlan:
    """One (app, kernel, structure) cell of a planned suite."""

    app: str
    kernel: str
    structure: str
    pilot_rate: float  # Laplace-smoothed SVF pilot failure rate
    #: The structure's own static ACE factor: RF liveness for ``rf``,
    #: value-set live shared intervals for ``smem``, 1.0 where no static
    #: estimator applies (caches).
    static_ace: float
    prior: float  # prior per-trial failure rate fed to the allocator
    weight: float  # Neyman allocation weight (unnormalised)
    trials: int  # allocated microarch trial budget


@dataclass(frozen=True)
class SuitePlan:
    """A global microarch budget split across suite cells."""

    budget: int
    pilot_trials: int
    seed: int
    min_trials: int
    cells: tuple[CellPlan, ...]

    @property
    def allocated(self) -> int:
        return sum(c.trials for c in self.cells)

    @property
    def pilot_cost(self) -> int:
        """Software-level pilot trials spent building the priors."""
        return self.pilot_trials * len(
            {(c.app, c.kernel) for c in self.cells})

    def specs(self, stop_rule: "StopRule | None" = None,
              workers: int | None = None,
              min_ceiling: "int | None" = None) -> list:
        """One adaptive uarch :class:`~repro.fi.campaign.CampaignSpec`
        per cell, budgeted per the plan.

        ``min_ceiling`` raises every cell's trial ceiling to at least
        that many trials. With a stop rule this costs nothing where the
        prior was right (the rule stops first) but lets a cell whose
        prior *under*-estimated its variance keep sampling to the target
        instead of silently missing it at its allocation.
        """
        from repro.fi.campaign import CampaignSpec

        return [
            CampaignSpec(level="uarch", app=c.app, kernel=c.kernel,
                         structure=c.structure,
                         trials=max(c.trials, min_ceiling or 0),
                         seed=self.seed, workers=workers,
                         stop_rule=stop_rule)
            for c in self.cells
        ]


def _largest_remainder(weights: list[float], amount: int) -> list[int]:
    """Split ``amount`` proportionally to ``weights``, summing exactly.

    Deterministic largest-remainder rounding; ties break by position so a
    plan is reproducible input for input.
    """
    total = sum(weights)
    if total <= 0 or amount <= 0:
        return [0] * len(weights)
    quotas = [amount * w / total for w in weights]
    shares = [math.floor(q) for q in quotas]
    leftover = amount - sum(shares)
    by_remainder = sorted(range(len(weights)),
                          key=lambda i: (shares[i] - quotas[i], i))
    for i in by_remainder[:leftover]:
        shares[i] += 1
    return shares


def _allocate(weights: list[float], budget: int, floor: int) -> list[int]:
    """Floor every cell, then split the remainder Neyman-style."""
    n = len(weights)
    if budget < floor * n:
        log.warning(
            "suite budget %d cannot give %d cells the %d-trial floor; "
            "allocating the floor evenly and truncating", budget, n, floor)
        shares = _largest_remainder([1.0] * n, budget)
        return [max(1, s) if budget >= n else s for s in shares]
    extra = _largest_remainder(weights, budget - floor * n)
    return [floor + e for e in extra]


def plan_suite(
    *,
    budget: int,
    apps: "list[str] | None" = None,
    pilot_trials: int = DEFAULT_PILOT_TRIALS,
    seed: int = 1,
    min_trials: "int | None" = None,
    workers: int | None = None,
    use_cache: bool = True,
) -> SuitePlan:
    """Allocate a global microarch trial budget across suite cells.

    Builds the two-level prior for every (app, kernel, structure) cell —
    a ``pilot_trials``-trial software-level campaign per kernel (cheap,
    cached, sharing the fixed path's seed streams) times the static ACE
    fraction and a per-structure attenuation — then splits ``budget``
    proportionally to ``weight x sqrt(p(1-p))``, where the weight is the
    cell's share in the chip- and app-level AVF aggregation (structure
    bits x kernel cycles), floored at ``min_trials`` per cell.
    """
    from repro.arch.config import quadro_gv100_like
    from repro.arch.structures import Structure, structure_bits
    from repro.fi.avf import derating_factor
    from repro.fi.campaign import CampaignSpec, profile_app, run_campaign
    from repro.kernels import all_applications, kernel_programs
    from repro.staticanalysis import static_smem_ace, static_vf_report
    from repro.staticanalysis.launches import capture_launch_contexts

    if not (isinstance(budget, int) and budget >= 1):
        raise ConfigError(f"budget must be a positive integer, got {budget!r}")
    if not (isinstance(pilot_trials, int) and pilot_trials >= 1):
        raise ConfigError(
            f"pilot_trials must be a positive integer, got {pilot_trials!r}")
    if min_trials is None:
        min_trials = DEFAULT_MIN_TRIALS
    uarch_config = quadro_gv100_like()
    programs = kernel_programs()
    bits_total = sum(structure_bits(s, uarch_config) for s in Structure)

    raw: list[dict] = []
    for app in all_applications():
        if apps is not None and app.name not in apps:
            continue
        profile = profile_app(app, uarch_config)
        app_cycles = max(profile.total_cycles, 1)
        for kernel in app.kernel_names:
            pilot = run_campaign(
                CampaignSpec(level="sw", app=app, kernel=kernel,
                             trials=pilot_trials, seed=seed,
                             workers=workers, use_cache=use_cache))
            # Laplace smoothing: 0/8 pilots still leave a nonzero prior.
            n = pilot.counts.classified
            failures = pilot.counts.sdc + pilot.counts.timeout \
                + pilot.counts.due
            pilot_rate = (failures + 1) / (n + 2)
            program = programs[(app.name, kernel)]
            contexts = [c for c in capture_launch_contexts(app)
                        if c.kernel == kernel]
            # Per-structure static ACE priors: RF from liveness, SMEM from
            # the abstract interpreter's live shared intervals (floored —
            # the estimate bounds *state*, not control corruption, so a
            # zero never zeroes a cell the pilot saw fail). Caches have no
            # static estimator and keep the attenuation alone.
            static_factor = {
                Structure.RF: static_vf_report(program).ace_fraction,
                Structure.SMEM: max(
                    0.25,
                    sum(static_smem_ace(program, c) for c in contexts)
                    / max(len(contexts), 1)),
            }
            launches = profile.kernel_launches(kernel)
            cycle_share = profile.kernel_cycles(kernel) / app_cycles
            for s in Structure:
                atten = STRUCTURE_ATTENUATION[s.value]
                prior = pilot_rate * atten * static_factor.get(s, 1.0)
                prior = min(_PRIOR_CAP, max(_PRIOR_FLOOR, prior))
                df = derating_factor(s, launches, uarch_config)
                bits_share = structure_bits(s, uarch_config) / bits_total
                weight = (bits_share * cycle_share * max(df, 1e-6)
                          * math.sqrt(prior * (1.0 - prior)))
                raw.append(dict(app=app.name, kernel=kernel,
                                structure=s.value, pilot_rate=pilot_rate,
                                static_ace=static_factor.get(s, 1.0),
                                prior=prior, weight=weight))
    if not raw:
        raise ConfigError("no suite cells matched the requested apps")

    shares = _allocate([c["weight"] for c in raw], budget, min_trials)
    cells = tuple(CellPlan(trials=t, **c) for c, t in zip(raw, shares))
    return SuitePlan(budget=budget, pilot_trials=pilot_trials, seed=seed,
                     min_trials=min_trials, cells=cells)


def render_plan(plan: SuitePlan) -> str:
    """The ``campaign plan`` dry-run table."""
    lines = ["== Adaptive suite plan (two-level allocation) =="]
    header = (f"{'cell':<32} {'pilot FR':>9} {'ACE':>6} {'prior':>7} "
              f"{'weight':>8} {'trials':>7}")
    lines.append(header)
    weight_total = sum(c.weight for c in plan.cells) or 1.0
    for c in plan.cells:
        cell = f"{c.app}/{c.kernel}/{c.structure}"
        lines.append(
            f"{cell:<32} {c.pilot_rate:>9.3f} {c.static_ace:>6.2f} "
            f"{c.prior:>7.3f} {c.weight / weight_total:>8.2%} {c.trials:>7}")
    lines.append(
        f"budget {plan.budget} -> {plan.allocated} microarch trials over "
        f"{len(plan.cells)} cells (floor {plan.min_trials}/cell), "
        f"steered by {plan.pilot_cost} software-level pilot trials")
    return "\n".join(lines)


def run_plan(
    plan: SuitePlan,
    stop_rule: "StopRule | None" = None,
    *,
    workers: int | None = None,
    min_ceiling: "int | None" = None,
    progress_factory=None,
) -> dict:
    """Execute a suite plan's cells as (optionally adaptive) campaigns.

    Returns ``{(app, kernel, structure): CampaignResult}``. With a
    ``stop_rule`` each cell may stop below its allocation; without one
    the allocation is spent exactly. ``min_ceiling`` is forwarded to
    :meth:`SuitePlan.specs`: cells the prior under-budgeted may run past
    their allocation (up to the ceiling) rather than miss the CI target.
    """
    from repro.fi.campaign import run_campaign

    results: dict = {}
    for cell, spec in zip(plan.cells,
                          plan.specs(stop_rule, workers, min_ceiling)):
        progress = None
        if progress_factory is not None:
            progress = progress_factory(
                f"{cell.app}/{cell.kernel}/uarch-{cell.structure}")
        results[(cell.app, cell.kernel, cell.structure)] = run_campaign(
            spec, progress=progress)
    return results
