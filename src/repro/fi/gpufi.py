"""Microarchitecture-level fault injector (the gpuFI-4 analogue).

A fault plan names one launch of the target kernel, one injection cycle
within it, and an injection site. When the simulated clock reaches the
cycle, one uniformly-chosen bit of that site is corrupted.

Two orthogonal axes extend the paper's transient single-bit model:

**Fault model** (:data:`FAULT_MODELS`):

* ``transient`` — the paper's SEU: the bit is flipped once and the run
  continues (plus adjacent multi-bit groups via ``num_bits``).
* ``stuck0`` / ``stuck1`` — a permanent defect: the bit is pinned to 0/1
  at the injection cycle and re-pinned by a per-cycle enforcement hook
  (:meth:`MicroarchFaultPlan.enforce`) for the rest of the run, overriding
  every subsequent write; the plan is re-armed on every later launch and
  re-bound to the launch's live state (the physical cell does not heal at
  kernel boundaries).
* ``intermittent`` — an aging-silicon duty-cycled defect: stuck-at
  behaviour that is only active for the first ``duty_on`` cycles of every
  ``duty_period``-cycle window (both drawn from the plan's RNG), measured
  on the cross-launch clock from the firing cycle.

**Target** (:data:`FAULT_TARGETS`):

* ``storage`` — the paper's arrays:

  * **RF / SMEM** — among the *live* banks/windows at the injection cycle
    (GPGPU-Sim only materialises live registers and allocated shared
    memory; the derating factor of :mod:`repro.fi.avf` compensates).
  * **L1D / L1T / L2** — among *all* data-array bits of the structure,
    valid or not, across every instance on the chip.

* ``control`` — the parallelism-management state of Guerrero-Balaguera
  et al. (PAPERS.md): per-lane PCs, the uniform PC, the active/done lane
  masks, barrier wait flags and arrival counters, and the SM scheduler's
  round-robin cursor. Sites are weighted by their bit widths, so the
  per-lane PC arrays dominate the draw the way they dominate the real
  control-unit area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.structures import Structure
from repro.errors import ExecutionError, PlanningError
from repro.utils.rng import derive_rng

#: The fault models the microarchitecture injector understands.
FAULT_MODELS = ("transient", "stuck0", "stuck1", "intermittent")

#: What a fault lands on: storage arrays vs parallelism-management state.
FAULT_TARGETS = ("storage", "control")

#: Persistent models: armed on every launch, re-pinned every cycle.
PERSISTENT_MODELS = ("stuck0", "stuck1", "intermittent")


class ECCUncorrectableError(ExecutionError):
    """Multi-bit fault detected by SECDED: a DUE by definition."""


# --------------------------------------------------------------- bit targets
#
# A bit target is one corruptible bit with ``flip()`` (transient) and
# ``pin(value)`` (stuck-at enforcement; must be idempotent and cheap when the
# bit already holds the value — it runs every clock iteration). Targets bind
# to the structures live at selection time; when the simulator frees those
# structures (CTA retirement, launch teardown) the binding writes to orphaned
# state and the fault has no further architectural effect until the plan is
# re-bound at the next launch.

class _BufferBit:
    """One bit of a uint8-viewable storage array (RF bank, SMEM window,
    cache data array). Bit numbering matches
    :func:`repro.utils.bitops.flip_bit_in_bytes`."""

    __slots__ = ("flat", "byte", "mask")

    def __init__(self, buf: np.ndarray, bit: int):
        self.flat = buf.reshape(-1)
        self.byte, sub = divmod(bit, 8)
        self.mask = np.uint8(1 << sub)

    def flip(self) -> None:
        self.flat[self.byte] ^= self.mask

    def pin(self, value: int) -> None:
        if value:
            self.flat[self.byte] |= self.mask
        else:
            self.flat[self.byte] &= np.uint8(~self.mask)


class _LanePCBit:
    """One bit of one lane's program counter.

    The per-lane PC array is authoritative hardware state; while the warp is
    uniform the simulator keeps lanes implicitly at ``upc``, so the first
    effective corruption materialises the per-lane PCs (same semantics,
    different encoding) before writing.
    """

    __slots__ = ("warp", "lane", "bit")

    def __init__(self, warp, bit_index: int):
        self.lane, self.bit = divmod(bit_index, 32)
        self.warp = warp

    def _read(self) -> int:
        warp = self.warp
        if warp.diverged:
            word = int(warp.pc.view(np.uint32)[self.lane])
        else:
            word = warp.upc & 0xFFFFFFFF
        return (word >> self.bit) & 1

    def flip(self) -> None:
        self.pin(1 - self._read())

    def pin(self, value: int) -> None:
        if self._read() == value:
            return
        warp = self.warp
        warp.materialize_pcs()
        warp.pc.view(np.uint32)[self.lane] ^= np.uint32(1 << self.bit)


class _AliveMaskBit:
    """One lane of the warp's stored done/active mask (``done[lane]``)."""

    __slots__ = ("warp", "lane")

    def __init__(self, warp, lane: int):
        self.warp = warp
        self.lane = lane

    def _read(self) -> int:
        return int(bool(self.warp.done[self.lane]))

    def flip(self) -> None:
        self.pin(1 - self._read())

    def pin(self, value: int) -> None:
        warp = self.warp
        if bool(warp.done[self.lane]) == bool(value):
            return
        warp.done[self.lane] = bool(value)
        warp.update_finished()


class _IntAttrBit:
    """One bit of a small integer control register (``upc``, a barrier
    arrival counter, the scheduler's round-robin cursor). ``post`` runs
    after an effective write — the hardware attached to the register (e.g.
    the barrier release comparator) reacts to the new value."""

    __slots__ = ("obj", "attr", "bit", "post")

    def __init__(self, obj, attr: str, bit: int, post=None):
        self.obj = obj
        self.attr = attr
        self.bit = bit
        self.post = post

    def _read(self) -> int:
        return (int(getattr(self.obj, self.attr)) >> self.bit) & 1

    def flip(self) -> None:
        self.pin(1 - self._read())

    def pin(self, value: int) -> None:
        if self._read() == value:
            return
        setattr(self.obj, self.attr,
                int(getattr(self.obj, self.attr)) ^ (1 << self.bit))
        if self.post is not None:
            self.post()


class _FlagBit:
    """A boolean control flag (``waiting_barrier``)."""

    __slots__ = ("obj", "attr")

    def __init__(self, obj, attr: str):
        self.obj = obj
        self.attr = attr

    def _read(self) -> int:
        return int(bool(getattr(self.obj, self.attr)))

    def flip(self) -> None:
        self.pin(1 - self._read())

    def pin(self, value: int) -> None:
        if self._read() != value:
            setattr(self.obj, self.attr, bool(value))


def _control_sites(gpu) -> list[tuple[str, int, object]]:
    """Enumerate the live control-state sites as (name, bits, factory).

    Finished warps are skipped — their state is no longer consulted, the
    control analogue of only injecting live RF banks.
    """
    sites: list[tuple[str, int, object]] = []
    cursor_bits = max(1, int(gpu.config.max_warps_per_sm).bit_length())
    for sm in gpu.sms:
        sites.append((
            f"sm{sm.index}.sched.rr", cursor_bits,
            lambda b, sm=sm: _IntAttrBit(sm, "scheduler_cursor", b)))
        for cta in sm.ctas:
            sites.append((
                f"sm{sm.index}.barrier.arrived", 8,
                lambda b, cta=cta: _IntAttrBit(
                    cta, "barrier_arrived", b,
                    post=cta.maybe_release_barrier)))
        for warp in sm.warps:
            if warp.finished:
                continue
            lanes = int(warp.pc.size)
            sites.append((f"warp{warp.uid}.pc", lanes * 32,
                          lambda b, w=warp: _LanePCBit(w, b)))
            sites.append((f"warp{warp.uid}.upc", 32,
                          lambda b, w=warp: _IntAttrBit(w, "upc", b)))
            sites.append((f"warp{warp.uid}.active", lanes,
                          lambda b, w=warp: _AliveMaskBit(w, b)))
            sites.append((f"warp{warp.uid}.barrier.wait", 1,
                          lambda b, w=warp: _FlagBit(w, "waiting_barrier")))
    return sites


@dataclass
class MicroarchFaultPlan:
    """One planned microarchitecture-level injection.

    ``num_bits`` selects the upset width: 1 = the paper's single-bit flips;
    2 = adjacent double-bit upsets (Section II-A notes beam studies find
    multi-bit flips confined to adjacent cells of one structure).

    ``ecc_protected`` models SECDED on the target structure: single-bit
    faults are corrected in place (no flip happens — the campaign classifies
    the trial Masked without simulating), and multi-bit faults raise a
    detected-uncorrectable error (DUE).

    ``fault_model`` / ``target`` select the persistence axis and the site
    family (see the module docstring). ``structure`` is ``None`` for
    control-target plans. ``stuck_value`` and the ``duty_*`` windows only
    matter to the intermittent model and come from the planner's RNG.
    """

    launch_index: int
    cycle: int
    structure: Structure | None
    seed: int
    num_bits: int = 1
    ecc_protected: bool = False
    fault_model: str = "transient"
    target: str = "storage"
    stuck_value: int = 0  # intermittent only; stuck0/stuck1 encode theirs
    duty_period: int = 0  # intermittent: window length (0 = always active)
    duty_on: int = 0  # intermittent: active cycles per window
    fired: bool = field(default=False)
    hit_live_target: bool = field(default=True)
    description: str = field(default="")

    @property
    def corrected_by_ecc(self) -> bool:
        """True when the fault provably has no architectural effect."""
        return self.ecc_protected and self.num_bits == 1

    @property
    def persistent(self) -> bool:
        """Stuck-at / intermittent plans outlive their injection cycle."""
        return self.fault_model in PERSISTENT_MODELS

    @property
    def pin_value(self) -> int:
        """The value a persistent fault forces onto its bits."""
        if self.fault_model == "stuck1":
            return 1
        if self.fault_model == "intermittent":
            return self.stuck_value
        return 0

    def _bits(self, first_bit: int, space_bits: int) -> list[int]:
        """The adjacent bit group of this fault within one storage space.

        Groups drawn near the top edge slide down instead of wrapping to
        bit 0: physically adjacent cells never straddle a bank/window
        boundary, and a group never exceeds its containing space.
        """
        count = min(self.num_bits, space_bits)
        start = max(0, min(first_bit, space_bits - count))
        return list(range(start, start + count))

    # ------------------------------------------------------------ selection
    def _select_storage(self, gpu, rng) -> tuple[list, str]:
        structure = self.structure
        if structure is Structure.RF:
            banks = gpu.live_rf_banks()
            sizes = [bank.regs.size * 32 for bank in banks]
            total = sum(sizes)
            if total == 0:
                return [], ""
            bit = int(rng.integers(total))
            for bank, size in zip(banks, sizes):
                if bit < size:
                    targets = [_BufferBit(bank.regs.view(np.uint8), b)
                               for b in self._bits(bit, size)]
                    return targets, f"RF bank bit {bit} x{self.num_bits}"
                bit -= size
        elif structure is Structure.SMEM:
            windows = gpu.live_smem_windows()
            sizes = [w.size * 8 for w in windows]
            total = sum(sizes)
            if total == 0:
                return [], ""
            bit = int(rng.integers(total))
            for window, size in zip(windows, sizes):
                if bit < size:
                    targets = [_BufferBit(window.data, b)
                               for b in self._bits(bit, size)]
                    return targets, f"SMEM window bit {bit} x{self.num_bits}"
                bit -= size
        else:
            caches = gpu.cache_instances(structure)
            total = sum(c.total_bits for c in caches)
            bit = int(rng.integers(total))
            for cache in caches:
                if bit < cache.total_bits:
                    targets = [_BufferBit(cache.data, b)
                               for b in self._bits(bit, cache.total_bits)]
                    return targets, f"{cache.name} bit {bit} x{self.num_bits}"
                bit -= cache.total_bits
        return [], ""

    def _select_control(self, gpu, rng) -> tuple[list, str]:
        sites = _control_sites(gpu)
        total = sum(bits for _, bits, _ in sites)
        if total == 0:
            return [], ""
        bit = int(rng.integers(total))
        for name, bits, make in sites:
            if bit < bits:
                group = self._bits(bit, bits)
                targets = [make(b) for b in group]
                return targets, f"{name} bit {bit} x{len(group)}"
            bit -= bits
        return [], ""

    def _select(self, gpu) -> tuple[list, str]:
        # One fresh, tag-derived stream per resolution: firing and every
        # later rebind draw the same site index deterministically.
        rng = derive_rng(self.seed, "uarch-fire")
        if self.target == "control":
            return self._select_control(gpu, rng)
        return self._select_storage(gpu, rng)

    # ------------------------------------------------------ fire / enforce
    def fire(self, gpu) -> None:
        """Corrupt the planned bit(s); called by the GPU clock at ``cycle``."""
        self.fired = True
        if self.corrected_by_ecc:
            self.description = "ECC corrected single-bit fault"
            return
        if self.ecc_protected and self.num_bits > 1:
            raise ECCUncorrectableError(
                f"{self.num_bits}-bit fault in ECC-protected "
                f"{self.structure.value if self.structure else self.target}"
            )
        targets, label = self._select(gpu)
        if not targets:
            self.hit_live_target = False
            return
        if not self.persistent:
            for t in targets:
                t.flip()
            self.description = label
            return
        self._targets = targets
        self._fired_at = gpu.global_cycle
        self.description = f"{label} {self.fault_model}@{self.pin_value}"
        self.enforce(gpu)

    def rebind(self, gpu) -> None:
        """Re-resolve a persistent fault against the current launch's state.

        The simulator rebuilds RF banks, SMEM windows and warp state per
        launch; the physical defect does not move, so the plan re-draws the
        same site index from its RNG and binds it to whatever is live now
        (caches simply re-bind to the same persistent cell). Called by the
        GPU when a fired persistent plan is armed for a later launch.
        """
        if not (self.persistent and self.fired) or self.corrected_by_ecc:
            return
        targets, _ = self._select(gpu)
        self._targets = targets
        if targets:
            self.hit_live_target = True
            self.enforce(gpu)

    def _duty_active(self, global_cycle: int) -> bool:
        if self.duty_period <= 0:
            return True
        return (global_cycle - self._fired_at) % self.duty_period < self.duty_on

    def enforce(self, gpu) -> None:
        """Re-pin the fault's bits (the per-cycle persistent-model hook)."""
        targets = getattr(self, "_targets", None)
        if not targets:
            return
        if (self.fault_model == "intermittent"
                and not self._duty_active(gpu.global_cycle)):
            return
        value = self.pin_value
        for t in targets:
            t.pin(value)


class MicroarchInjector:
    """GPU hook object carrying one :class:`MicroarchFaultPlan` per app run."""

    def __init__(self, plan: MicroarchFaultPlan):
        self.plan = plan

    def arm(self, launch_index: int, kernel_name: str, gpu):
        """Called by the GPU at launch start; returns the active plan or None.

        Transient plans arm exactly once, for their planned launch.
        Persistent plans (stuck-at / intermittent) stay armed for every
        launch from the planned one on — a physical defect does not heal at
        a kernel boundary — and the GPU re-binds fired plans to the new
        launch's live state.
        """
        plan = self.plan
        if plan.persistent:
            return plan if launch_index >= plan.launch_index else None
        if launch_index == plan.launch_index and not plan.fired:
            return plan
        return None


def plan_microarch_fault(
    launches: list[dict],
    structure: Structure | None,
    seed: int,
    num_bits: int = 1,
    ecc_protected: bool = False,
    fault_model: str = "transient",
    target: str = "storage",
    context: str = "",
) -> MicroarchFaultPlan:
    """Draw one fault plan, uniform over the target kernel's execution time.

    ``launches`` are the profile records of the target kernel. Launch
    instances are weighted by their cycle counts and the injection cycle is
    uniform within the chosen launch — together a uniform draw over all
    cycles the kernel was resident, the paper's fault model. The
    intermittent model additionally draws its stuck value and duty-cycle
    windows here, so plan determinism covers them.

    ``context`` names the app/kernel in planner errors.
    """
    where = context or "the target kernel"
    if fault_model not in FAULT_MODELS:
        raise PlanningError(
            f"unknown fault model {fault_model!r} for {where} "
            f"(known: {', '.join(FAULT_MODELS)})")
    if target not in FAULT_TARGETS:
        raise PlanningError(
            f"unknown fault target {target!r} for {where} "
            f"(known: {', '.join(FAULT_TARGETS)})")
    if target == "control":
        if structure is not None:
            raise PlanningError(
                f"control-target faults for {where} pick their own "
                f"parallelism-management sites; drop the structure "
                f"({structure.value})")
        if ecc_protected:
            raise PlanningError(
                f"ECC protects storage arrays, not the parallelism-"
                f"management state targeted for {where}")
    elif structure is None:
        raise PlanningError(
            f"storage-target faults for {where} need a structure "
            f"(RF/SMEM/L1D/L1T/L2)")
    rng = derive_rng(seed, "uarch-plan")
    if not launches:
        raise PlanningError(
            f"cannot plan a microarchitecture fault for {where}: the "
            f"profile records no launches (is the kernel name right?)")
    weights = np.array([max(rec["cycles"], 1) for rec in launches], dtype=float)
    idx = int(rng.choice(len(launches), p=weights / weights.sum()))
    chosen = launches[idx]
    cycle = int(rng.integers(max(chosen["cycles"], 1)))
    stuck_value = 0
    duty_period = 0
    duty_on = 0
    if fault_model == "intermittent":
        # Drawn after the transient draws, so transient plans consume the
        # identical RNG prefix they always did.
        stuck_value = int(rng.integers(2))
        duty_period = int(2 ** rng.integers(5, 11))  # 32..1024 cycles
        duty_on = max(1, int(duty_period * rng.uniform(0.1, 0.9)))
    return MicroarchFaultPlan(
        launch_index=chosen["index"],
        cycle=cycle,
        structure=structure,
        seed=seed,
        num_bits=num_bits,
        ecc_protected=ecc_protected,
        fault_model=fault_model,
        target=target,
        stuck_value=stuck_value,
        duty_period=duty_period,
        duty_on=duty_on,
    )
