"""Microarchitecture-level fault injector (the gpuFI-4 analogue).

A fault plan names one launch of the target kernel, one injection cycle
within it, and a hardware structure. When the simulated clock reaches the
cycle, one uniformly-chosen bit of that structure is flipped:

* **RF / SMEM** — among the *live* banks/windows at the injection cycle
  (GPGPU-Sim only materialises live registers and allocated shared memory;
  the derating factor of :mod:`repro.fi.avf` compensates).
* **L1D / L1T / L2** — among *all* data-array bits of the structure, valid
  or not, across every instance on the chip (ground-truth coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.structures import Structure
from repro.errors import ExecutionError
from repro.utils.bitops import flip_bit_in_bytes
from repro.utils.rng import derive_rng


class ECCUncorrectableError(ExecutionError):
    """Multi-bit fault detected by SECDED: a DUE by definition."""


@dataclass
class MicroarchFaultPlan:
    """One planned microarchitecture-level injection.

    ``num_bits`` selects the fault model: 1 = the paper's single-bit flips;
    2 = adjacent double-bit upsets (Section II-A notes beam studies find
    multi-bit flips confined to adjacent cells of one structure).

    ``ecc_protected`` models SECDED on the target structure: single-bit
    faults are corrected in place (no flip happens — the campaign classifies
    the trial Masked without simulating), and multi-bit faults raise a
    detected-uncorrectable error (DUE).
    """

    launch_index: int
    cycle: int
    structure: Structure
    seed: int
    num_bits: int = 1
    ecc_protected: bool = False
    fired: bool = field(default=False)
    hit_live_target: bool = field(default=True)
    description: str = field(default="")

    @property
    def corrected_by_ecc(self) -> bool:
        """True when the fault provably has no architectural effect."""
        return self.ecc_protected and self.num_bits == 1

    def _bits(self, first_bit: int, space_bits: int) -> list[int]:
        """The adjacent bit group of this fault within one storage space."""
        return [(first_bit + i) % space_bits for i in range(self.num_bits)]

    def fire(self, gpu) -> None:
        """Flip the planned bit(s); called by the GPU clock at ``cycle``."""
        self.fired = True
        if self.corrected_by_ecc:
            self.description = "ECC corrected single-bit fault"
            return
        if self.ecc_protected and self.num_bits > 1:
            raise ECCUncorrectableError(
                f"{self.num_bits}-bit fault in ECC-protected "
                f"{self.structure.value}"
            )
        rng = derive_rng(self.seed, "uarch-fire")
        structure = self.structure
        if structure is Structure.RF:
            banks = gpu.live_rf_banks()
            sizes = [bank.regs.size * 32 for bank in banks]
            total = sum(sizes)
            if total == 0:
                self.hit_live_target = False
                return
            bit = int(rng.integers(total))
            for bank, size in zip(banks, sizes):
                if bit < size:
                    for b in self._bits(bit, size):
                        flip_bit_in_bytes(bank.regs.view(np.uint8), b)
                    self.description = f"RF bank bit {bit} x{self.num_bits}"
                    return
                bit -= size
        elif structure is Structure.SMEM:
            windows = gpu.live_smem_windows()
            sizes = [w.size * 8 for w in windows]
            total = sum(sizes)
            if total == 0:
                self.hit_live_target = False
                return
            bit = int(rng.integers(total))
            for window, size in zip(windows, sizes):
                if bit < size:
                    for b in self._bits(bit, size):
                        flip_bit_in_bytes(window.data, b)
                    self.description = f"SMEM window bit {bit} x{self.num_bits}"
                    return
                bit -= size
        else:
            caches = gpu.cache_instances(structure)
            total = sum(c.total_bits for c in caches)
            bit = int(rng.integers(total))
            for cache in caches:
                if bit < cache.total_bits:
                    for b in self._bits(bit, cache.total_bits):
                        cache.flip_bit(b)
                    self.description = f"{cache.name} bit {bit} x{self.num_bits}"
                    return
                bit -= cache.total_bits


class MicroarchInjector:
    """GPU hook object carrying one :class:`MicroarchFaultPlan` per app run."""

    def __init__(self, plan: MicroarchFaultPlan):
        self.plan = plan

    def arm(self, launch_index: int, kernel_name: str, gpu):
        """Called by the GPU at launch start; returns the active plan or None."""
        if launch_index == self.plan.launch_index and not self.plan.fired:
            return self.plan
        return None


def plan_microarch_fault(
    launches: list[dict],
    structure: Structure,
    seed: int,
    num_bits: int = 1,
    ecc_protected: bool = False,
) -> MicroarchFaultPlan:
    """Draw one fault plan, uniform over the target kernel's execution time.

    ``launches`` are the profile records of the target kernel. Launch
    instances are weighted by their cycle counts and the injection cycle is
    uniform within the chosen launch — together a uniform draw over all
    cycles the kernel was resident, the paper's fault model.
    """
    rng = derive_rng(seed, "uarch-plan")
    if not launches:
        raise ValueError("no launches to plan against")
    weights = np.array([max(rec["cycles"], 1) for rec in launches], dtype=float)
    idx = int(rng.choice(len(launches), p=weights / weights.sum()))
    chosen = launches[idx]
    cycle = int(rng.integers(max(chosen["cycles"], 1)))
    return MicroarchFaultPlan(
        launch_index=chosen["index"],
        cycle=cycle,
        structure=structure,
        seed=seed,
        num_bits=num_bits,
        ecc_protected=ecc_protected,
    )
