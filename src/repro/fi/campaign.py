"""Statistical fault-injection campaigns behind one ``run_campaign`` API.

A campaign profiles the application fault-free (golden outputs, per-launch
cycles and dynamic-instruction counts), then runs N injected trials, each on
a reset device with one planned fault, and tallies the outcome classes.

:func:`run_campaign` is the single entry point: a frozen
:class:`CampaignSpec` names the injection ``level`` (``uarch``, ``sw``,
``sw-ld``, ``src``, ``src-sticky``), the application/kernel, the trial
budget, the seed and the worker-pool size; runtime-only collaborators
(profiles, harness factories, progress callbacks) are keyword arguments.

``uarch`` campaigns additionally select a fault model
(``CampaignSpec(fault_model=...)``: ``transient`` — the paper's SEU —
or the persistent ``stuck0``/``stuck1``/``intermittent`` models of
:mod:`repro.fi.gpufi`) and a target family (``target="storage"`` for
RF/SMEM/caches, ``target="control"`` for parallelism-management state:
PCs, active masks, barrier and scheduler registers). Every trial runs
under a cross-launch cycle watchdog (``REPRO_HANG_FACTOR`` × the golden
run's total cycles, floored at :data:`TRIAL_CYCLE_FLOOR`): a persistent
control-state fault that hangs the simulated app — even via a host
convergence loop the per-launch budgets cannot see — aborts as a Timeout
instead of wedging a worker, at any worker count. With both knobs at
their defaults, journals, tallies and cache payloads are byte-identical
to the transient-only pipeline.

``CampaignSpec(sdc_anatomy=True)`` additionally fingerprints every SDC
trial (see :mod:`repro.sdc`): the faulty outputs are diffed against the
golden run into a compact error-pattern record with a TOLERABLE/CRITICAL
severity verdict, journaled with the trial, aggregated on the result
(:attr:`CampaignResult.sdc_anatomy`), and cached. The flag is part of the
cache key; with it off, journals and cache payloads are byte-identical to
an anatomy-unaware build.

Results are cached as JSON under ``.repro_cache/`` keyed by every parameter
that affects the outcome — the worker count deliberately excluded, so serial
and parallel runs share cache entries — and experiments and benchmarks
sharing campaigns (Figs. 1, 2, 4, 5, Table I all reuse the same base
campaigns) never redo simulation work.

Trial loops are delegated to the execution engine in
:mod:`repro.fi.runner`: trials are journaled as they complete (killed
campaigns resume where they stopped), unexpected trial exceptions are
isolated and retried instead of aborting the campaign, cache writes are
atomic (temp file + ``os.replace``), and ``workers > 1`` fans trials out
over a forked worker pool with bit-identical results.

Campaigns can stop early: ``CampaignSpec(stop_rule=StopRule(...))`` (or
``REPRO_CI_HALFWIDTH``) ends the trial loop once the Wilson interval on
the failure rate is at least as tight as requested (never before the
rule's ``min_trials``), and ``CampaignSpec(budget=N)`` plans an adaptive
campaign for up to ``N`` trials instead of the fixed ``trials`` count
(see :mod:`repro.fi.planner`). Both fields enter the cache key only when
set, and per-trial seeds come from the same prefix-stable streams either
way — fixed-budget campaigns stay byte-identical (keys, journals,
tallies), and an adaptive campaign agrees with the fixed one on every
trial it runs.

Campaigns are observable: ``CampaignSpec(telemetry=True)`` (or
``REPRO_TELEMETRY=1``) streams structured events — phase spans for the
golden run, injection, classification, journal commits and cache I/O,
plus per-trial outcomes and per-kernel LaunchStats rollups — to a JSONL
file under ``<cache_dir>/telemetry/`` (see :mod:`repro.telemetry`).
Telemetry never enters cache keys, journals, or tallies.

Environment knobs (see :mod:`repro.config`):

* ``REPRO_TRIALS`` — override the default trials per campaign cell.
* ``REPRO_CACHE_DIR`` — cache location (default ``.repro_cache``).
* ``REPRO_MAX_TRIAL_FAILURES`` — tolerated crash fraction (default 0.1).
* ``REPRO_WORKERS`` — default trial-execution pool size (default 1).
* ``REPRO_HANG_FACTOR`` — trial watchdog headroom (default 25x golden).
* ``REPRO_TELEMETRY`` — default-enable campaign telemetry.
* ``REPRO_CI_HALFWIDTH`` / ``REPRO_MIN_TRIALS`` — default adaptive stop
  rule for specs that don't carry one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass

from repro.arch.config import GPUConfig
from repro.arch.structures import Structure
from repro.config import DEFAULT_TRIALS, get_settings
from repro.errors import ConfigError, ExecutionError, PlanningError, SimTimeout
from repro.fi.gpufi import (
    FAULT_MODELS,
    FAULT_TARGETS,
    MicroarchInjector,
    plan_microarch_fault,
)
from repro.fi.journal import cache_dir
from repro.fi.nvbitfi import SoftwareInjector, plan_software_fault
from repro.fi.outcomes import FaultOutcome, OutcomeCounts
from repro.fi.planner import StopRule
from repro.fi.runner import ProgressFn, WorkerProgressFn, execute_trials
from repro.kernels.base import DeviceHarness, GPUApplication, outputs_equal
from repro.log import get_logger
from repro.sim.gpu import GPU
from repro.telemetry.events import (
    NULL,
    TelemetrySession,
    current_telemetry,
    telemetry_events_path,
)
from repro.utils.rng import spawn_seeds

__all__ = [
    "AppProfile", "CampaignResult", "CampaignSpec", "cache_dir",
    "default_trials", "profile_app", "run_campaign", "trial_cycle_budget",
    "CACHE_VERSION", "DEFAULT_TRIALS", "CAMPAIGN_LEVELS",
    "FAULT_MODELS", "FAULT_TARGETS",
]

log = get_logger(__name__)

#: Bump to invalidate every cached campaign result after a model change.
#: v12: permanent/intermittent fault models (``fault_model``/``target`` on
#: the spec, clamped — no longer wrapping — adjacent multi-bit groups, the
#: REPRO_HANG_FACTOR trial watchdog).
CACHE_VERSION = 12

#: The injection levels ``run_campaign`` dispatches on. The ``uarch`` level
#: additionally fans out over ``CampaignSpec.fault_model`` (transient /
#: stuck0 / stuck1 / intermittent) and ``CampaignSpec.target``
#: (storage / control).
CAMPAIGN_LEVELS = ("uarch", "sw", "sw-ld", "src", "src-sticky")

#: Floor for the trial-level watchdog budget: short golden runs still get
#: enough headroom that a slow-but-terminating faulty run is not misread
#: as a hang.
TRIAL_CYCLE_FLOOR = 50_000


def default_trials() -> int:
    """Trials per campaign cell (``REPRO_TRIALS``, default 64)."""
    return get_settings().trials


def _matches_kernel(launch_name: str, kernel: str) -> bool:
    """A launch belongs to a kernel if it is the kernel or its vote step."""
    return launch_name == kernel or launch_name.startswith(kernel + "@")


@dataclass
class AppProfile:
    """Fault-free profile of one application on one configuration."""

    app_name: str
    config_name: str
    launches: list[dict]  # per-launch: index,name,cycles,injectable,...
    golden: dict  # output name -> ndarray
    total_cycles: int
    stats_by_launch: list[dict]

    def kernel_launches(self, kernel: str, include_post: bool = True
                        ) -> list[dict]:
        """Launches of a kernel; ``include_post=False`` drops hardening
        post-processing steps (``<kernel>@vote``) — the software-level
        injector only sees the computational kernel (NVBitFI instruments
        the kernel, not the TMR vote), while the cross-layer evaluation
        covers the whole hardened unit."""
        recs = [l for l in self.launches if _matches_kernel(l["name"], kernel)]
        if not include_post:
            recs = [l for l in recs if "@" not in l["name"]]
        return recs

    def kernel_cycles(self, kernel: str) -> int:
        return sum(l["cycles"] for l in self.kernel_launches(kernel))

    def kernel_instructions(self, kernel: str) -> int:
        return sum(l["injectable"] for l in self.kernel_launches(kernel))

    def kernel_loads(self, kernel: str) -> int:
        return sum(l["injectable_loads"] for l in self.kernel_launches(kernel))


def profile_app(
    app: GPUApplication,
    config: GPUConfig,
    harness_factory=None,
) -> AppProfile:
    """Run the application fault-free and collect its profile."""
    gpu = GPU(config)
    harness = harness_factory() if harness_factory else DeviceHarness()
    golden = app.run(gpu, harness)
    harness.finalize(gpu)
    launches = []
    stats_by_launch = []
    for rec in gpu.launch_records:
        launches.append(
            {
                "index": rec.index,
                "name": rec.name,
                "cycles": rec.stats.cycles,
                "injectable": rec.stats.sw_injectable_instructions,
                "injectable_loads": rec.stats.sw_injectable_loads,
                "threads": rec.stats.threads_launched,
                "ctas": rec.stats.ctas_launched,
                "regs_per_thread": rec.stats.regs_per_thread,
                "smem_bytes_per_cta": rec.stats.smem_bytes_per_cta,
            }
        )
        stats_by_launch.append(rec.stats.snapshot(config))
    return AppProfile(
        app_name=app.name,
        config_name=config.name,
        launches=launches,
        golden=golden,
        total_cycles=sum(l["cycles"] for l in launches),
        stats_by_launch=stats_by_launch,
    )


@dataclass
class CampaignResult:
    """Outcome tally + the profile-derived weights the AVF/SVF math needs."""

    app_name: str
    kernel: str
    injector: str  # "uarch" | "sw" | "sw-ld" | "sw-src-*"
    structure: str | None
    trials: int  # trials actually run (== planned unless stopped early)
    seed: int
    config_name: str
    counts: OutcomeCounts
    derating_factor: float = 1.0
    kernel_cycles: int = 0
    kernel_instructions: int = 0
    control_path_masked: int = 0  # masked trials whose cycle count changed
    hardened: bool = False
    #: Hardening-zoo scheme name when the campaign ran under a registry
    #: scheme (``CampaignSpec.harden``); ``None`` otherwise — and then
    #: absent from the cache payload, keeping unhardened payloads
    #: identical to pre-zoo builds.
    harden: str | None = None
    #: Fault model / target axes of a uarch campaign (see
    #: :data:`repro.fi.gpufi.FAULT_MODELS`). Defaults describe every legacy
    #: campaign and are then omitted from the cache payload, keeping
    #: transient-path payloads identical to pre-permanent-fault builds.
    fault_model: str = "transient"
    fault_target: str = "storage"
    #: SDC anatomy aggregate (``sdc_anatomy=True`` campaigns only):
    #: ``{"tolerable": int, "critical": int, "records": [...]}`` with one
    #: record per SDC trial in trial order. ``None`` when anatomy was off
    #: (and then absent from the cache payload, keeping off-path payloads
    #: identical to anatomy-unaware builds).
    sdc_anatomy: dict | None = None
    #: Adaptive campaigns only (``None`` → absent from the cache payload):
    #: the trial budget the campaign was planned for, and the stop rule's
    #: identity payload. ``trials`` then records the count actually run.
    planned_trials: int | None = None
    stop_rule: dict | None = None

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["counts"] = self.counts.to_dict()
        if self.harden is None:
            del d["harden"]
        if self.sdc_anatomy is None:
            del d["sdc_anatomy"]
        if self.fault_model == "transient":
            del d["fault_model"]
        if self.fault_target == "storage":
            del d["fault_target"]
        if self.planned_trials is None:
            del d["planned_trials"]
        if self.stop_rule is None:
            del d["stop_rule"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignResult":
        d = dict(d)
        d["counts"] = OutcomeCounts.from_dict(d["counts"])
        return cls(**d)


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that *identifies* one campaign, as one frozen value.

    ``app`` and ``config`` accept either registry/alias names (``"va"``,
    ``"gv100"``/``"v100"``) or already-built objects; ``kernel=None``
    means the application's first kernel, ``config=None`` the paper's
    tool pairing for the level (GV100 for ``uarch``, V100 otherwise).
    ``trials=None`` and ``workers=None`` defer to ``REPRO_TRIALS`` /
    ``REPRO_WORKERS``. Runtime-only collaborators (profiles, harness
    factories, progress callbacks) are keyword arguments of
    :func:`run_campaign`, not part of the spec — the spec is exactly the
    identity that determines the result.
    """

    level: str
    app: "GPUApplication | str"
    kernel: str | None = None
    structure: "Structure | str | None" = None  # uarch only
    config: "GPUConfig | str | None" = None
    trials: int | None = None
    seed: int = 1
    workers: int | None = None
    hardened: bool = False
    #: Hardening-zoo scheme by name (``tmr``/``dmr``/``abft``/``range``,
    #: see :mod:`repro.hardening.registry`): the campaign resolves its
    #: harness factory from the registry, and the scheme joins the cache
    #: key, seed tag and journal meta. ``None`` (the default) leaves
    #: every existing identity byte-for-byte untouched. The legacy
    #: ``hardened`` flag stays the experiment-local TMR shorthand;
    #: setting both is a config error.
    harden: str | None = None
    num_bits: int = 1  # uarch fault model: 1 = single-bit, 2 = adjacent
    ecc_protected: bool = False  # uarch only: SECDED on the target structure
    #: Persistence axis of a uarch fault (``transient`` / ``stuck0`` /
    #: ``stuck1`` / ``intermittent``, see :mod:`repro.fi.gpufi`). The
    #: persistent models pin their bits every cycle for the rest of the
    #: run; defaults keep the legacy transient pipeline byte-identical.
    fault_model: str = "transient"
    #: Site family of a uarch fault: ``storage`` (RF/SMEM/caches, needs a
    #: ``structure``) or ``control`` (parallelism-management state — PCs,
    #: active masks, barrier/scheduler registers; ``structure`` must stay
    #: unset).
    target: str = "storage"
    use_cache: bool = True
    #: Fingerprint every SDC trial (see :mod:`repro.sdc`): the faulty
    #: outputs are diffed against the golden run into an error-pattern
    #: record with a TOLERABLE/CRITICAL severity verdict, journaled with
    #: the trial and aggregated on :attr:`CampaignResult.sdc_anatomy`.
    #: Part of the cache key; off-path journals and payloads are
    #: byte-identical to anatomy-unaware builds.
    sdc_anatomy: bool = False
    #: Collect telemetry events for this campaign (``None`` defers to
    #: ``REPRO_TELEMETRY``). Observability only: deliberately excluded
    #: from cache keys, journals and tallies, which stay bit-identical
    #: with telemetry on or off.
    telemetry: bool | None = None
    #: Adaptive early stopping (see :class:`repro.fi.planner.StopRule`):
    #: end the trial loop once the Wilson CI on the rule's metric is at
    #: least as tight as requested, never before its ``min_trials``.
    #: ``None`` defers to ``REPRO_CI_HALFWIDTH`` (unset → fixed budget).
    #: Enters the cache key only when set, so fixed-budget identities are
    #: untouched.
    stop_rule: "StopRule | None" = None
    #: Adaptive trial budget: plan up to this many trials instead of the
    #: fixed ``trials`` count. Requires a stop rule (an uncapped plan
    #: with no way to stop is a config error, and a budget without a rule
    #: is just ``trials``). Enters the cache key only when set.
    budget: int | None = None

    def derive(self, **overrides) -> "CampaignSpec":
        """A copy of this spec with the given fields replaced.

        The campaign analogue of :func:`dataclasses.replace`: experiments
        that sweep one axis (hardened, fault model, structure, trial
        count) derive the variants from one base spec instead of
        restating every field —
        ``spec.derive(hardened=True, trials=40)``.
        """
        return dataclasses.replace(self, **overrides)


def _resolve_app(app) -> GPUApplication:
    if isinstance(app, str):
        from repro.kernels import get_application  # local: heavy import

        try:
            return get_application(app)
        except KeyError:
            raise ConfigError(f"unknown application {app!r}") from None
    return app


def _resolve_config(config, level: str) -> GPUConfig:
    from repro.arch.config import quadro_gv100_like, tesla_v100_like

    if config is None:
        # The paper's tool pairing: gpuFI-4 on GV100, NVBitFI on V100.
        return quadro_gv100_like() if level == "uarch" else tesla_v100_like()
    if isinstance(config, str):
        named = {"gv100": quadro_gv100_like, "v100": tesla_v100_like}
        if config not in named:
            raise ConfigError(
                f"unknown config {config!r} (known: {', '.join(named)})")
        return named[config]()
    return config


def run_campaign(
    spec: CampaignSpec,
    *,
    harness_factory=None,
    profile: "AppProfile | None" = None,
    profile_supplier=None,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
    worker_progress: WorkerProgressFn | None = None,
    telemetry_session: "TelemetrySession | None" = None,
) -> CampaignResult:
    """Run (or load from cache) the campaign a :class:`CampaignSpec` names.

    ``profile_supplier`` is an optional zero-arg callable evaluated only on
    a cache miss (keeps cache-hit paths free of simulation work);
    ``max_failure_rate`` overrides ``REPRO_MAX_TRIAL_FAILURES``;
    ``progress(completed, total, outcome)`` fires after every trial and
    ``worker_progress(worker_id, completed)`` as pool results arrive; see
    :mod:`repro.fi.runner` for the resilience and parallelism semantics.

    ``telemetry_session`` lets the caller choose where the telemetry
    event stream lands (and counts as opting in, unless the spec says
    ``telemetry=False``); without it, an enabled campaign writes to
    ``<cache_dir>/telemetry/<cache key>.jsonl``. The caller owns a
    session it passed in; campaign-created sessions are closed here.
    """
    if spec.level not in CAMPAIGN_LEVELS:
        raise ConfigError(
            f"unknown campaign level {spec.level!r} "
            f"(known: {', '.join(CAMPAIGN_LEVELS)})")
    app = _resolve_app(spec.app)
    kernel = spec.kernel if spec.kernel is not None else app.kernel_names[0]
    config = _resolve_config(spec.config, spec.level)
    stop_rule = _resolve_stop_rule(spec)
    runtime = dict(
        trials=spec.trials, seed=spec.seed, use_cache=spec.use_cache,
        profile=profile, profile_supplier=profile_supplier,
        max_failure_rate=max_failure_rate, progress=progress,
        workers=spec.workers, worker_progress=worker_progress,
        sdc_anatomy=spec.sdc_anatomy,
        telemetry=spec.telemetry, telemetry_session=telemetry_session,
        stop_rule=stop_rule, budget=spec.budget,
    )
    if spec.fault_model not in FAULT_MODELS:
        raise ConfigError(
            f"unknown fault model {spec.fault_model!r} "
            f"(known: {', '.join(FAULT_MODELS)})")
    if spec.target not in FAULT_TARGETS:
        raise ConfigError(
            f"unknown fault target {spec.target!r} "
            f"(known: {', '.join(FAULT_TARGETS)})")
    if spec.level != "uarch" and (spec.fault_model != "transient"
                                  or spec.target != "storage"):
        raise ConfigError(
            "fault_model/target select microarchitecture-level fault "
            f"variants; the {spec.level!r} level has no notion of them")
    if spec.harden is not None:
        if spec.level.startswith("src"):
            raise ConfigError(
                "source-level campaigns have no hardened variant")
        if spec.hardened:
            raise ConfigError(
                "harden names a scheme from the hardening registry and "
                "hardened is its legacy TMR shorthand; set one, not both")
        if harness_factory is not None:
            raise ConfigError(
                "harden resolves the harness factory from the hardening "
                "registry; drop the explicit harness_factory")
        from repro.hardening.registry import hardening_scheme  # local:
        # the default path must not import kernel/hardening modules.

        harness_factory = hardening_scheme(spec.harden)
    if spec.level == "uarch":
        if spec.target == "control":
            if spec.structure is not None:
                raise ConfigError(
                    "control-target campaigns inject the parallelism-"
                    "management state and pick their own sites; drop the "
                    "structure")
            if spec.ecc_protected:
                raise ConfigError(
                    "ECC protects storage arrays, not parallelism-"
                    "management state; drop ecc_protected for "
                    "target='control'")
            structure = None
        else:
            if spec.structure is None:
                raise ConfigError("uarch campaigns need a target structure")
            structure = (Structure(spec.structure)
                         if not isinstance(spec.structure, Structure)
                         else spec.structure)
        return _microarch_campaign(
            app, kernel, structure, config,
            harness_factory=harness_factory, hardened=spec.hardened,
            harden=spec.harden,
            num_bits=spec.num_bits, ecc_protected=spec.ecc_protected,
            fault_model=spec.fault_model, target=spec.target,
            **runtime)
    if spec.level in ("sw", "sw-ld"):
        return _software_campaign(
            app, kernel, config, loads_only=spec.level == "sw-ld",
            harness_factory=harness_factory, hardened=spec.hardened,
            harden=spec.harden,
            **runtime)
    # src / src-sticky
    if spec.hardened:
        raise ConfigError("source-level campaigns have no hardened variant")
    runtime.pop("profile_supplier")
    return _source_campaign(
        app, kernel, config, sticky=spec.level == "src-sticky", **runtime)


def _resolve_stop_rule(spec: CampaignSpec) -> "StopRule | None":
    """The effective stop rule: the spec's, else the env default.

    ``REPRO_CI_HALFWIDTH`` opts every spec without an explicit rule into
    adaptive stopping (with ``REPRO_MIN_TRIALS`` as the floor) — and like
    every identity-bearing knob it then enters the cache key, so env-
    adaptive and fixed runs never share cache entries.
    """
    rule = spec.stop_rule
    if rule is not None and not isinstance(rule, StopRule):
        raise ConfigError(
            f"stop_rule must be a repro.fi.planner.StopRule, "
            f"got {type(rule).__name__}")
    if rule is None:
        settings = get_settings()
        if settings.ci_halfwidth is not None:
            rule = StopRule(ci_halfwidth=settings.ci_halfwidth,
                            min_trials=settings.min_trials)
    if spec.budget is not None:
        if not (isinstance(spec.budget, int) and spec.budget >= 1):
            raise ConfigError(
                f"budget must be a positive integer, got {spec.budget!r}")
        if rule is None:
            raise ConfigError(
                "budget plans an adaptive campaign and needs a stop_rule "
                "(or REPRO_CI_HALFWIDTH); for a fixed count use trials")
    return rule


def _cache_key(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _cache_load(key: str) -> dict | None:
    path = cache_dir() / f"{key}.json"
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        log.warning("campaign cache %s unreadable (%s); re-running the "
                    "campaign", path, exc)
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        # Quarantine rather than silently re-simulating forever: the rename
        # both surfaces the corruption and unblocks the next _cache_store.
        quarantine = path.with_suffix(".json.corrupt")
        try:
            os.replace(path, quarantine)
            log.warning("campaign cache %s is corrupt (%s); quarantined as "
                        "%s and re-running the campaign", path.name, exc,
                        quarantine.name)
        except OSError as rename_exc:
            log.warning("campaign cache %s is corrupt (%s) and could not be "
                        "quarantined (%s)", path.name, exc, rename_exc)
        return None


def _cache_store(key: str, payload: dict) -> None:
    """Atomically persist one campaign result.

    The payload lands in a temp file in the cache directory first and is
    renamed over the final name only once fully written and fsynced, so a
    crash mid-write can never leave a torn ``<key>.json`` and concurrent
    readers always see either nothing or one complete payload.
    """
    d = cache_dir()
    d.mkdir(parents=True, exist_ok=True)
    path = d / f"{key}.json"
    fd, tmp = tempfile.mkstemp(dir=str(d), prefix=f".{key}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(json.dumps(payload, sort_keys=True))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _budget_fn(profile: AppProfile, config: GPUConfig):
    cycles = [l["cycles"] for l in profile.launches]

    def fn(launch_index: int, kernel_name: str) -> int:
        if launch_index < len(cycles):
            return config.timeout_cycles(cycles[launch_index])
        # Extra, unprofiled launches (fault-perturbed host loops) get the
        # budget of the longest profiled launch.
        return config.timeout_cycles(max(cycles) if cycles else 0)

    return fn


def _classify(app, gpu, harness, golden
              ) -> "tuple[FaultOutcome, int, dict | None]":
    """Run once under injection; returns (outcome, total cycles executed,
    outputs). Outputs are only produced by runs that complete (None for
    Timeout/DUE) — the SDC-anatomy path diffs them against the golden
    run."""
    try:
        outputs = app.run(gpu, harness)
        harness.finalize(gpu)
    except SimTimeout:
        return FaultOutcome.TIMEOUT, _total_cycles(gpu), None
    except ExecutionError:
        return FaultOutcome.DUE, _total_cycles(gpu), None
    cycles = _total_cycles(gpu)
    if outputs_equal(outputs, golden):
        return FaultOutcome.MASKED, cycles, outputs
    return FaultOutcome.SDC, cycles, outputs


def _total_cycles(gpu: GPU) -> int:
    return sum(rec.stats.cycles for rec in gpu.launch_records)


def trial_cycle_budget(profile: AppProfile) -> int:
    """The cross-launch watchdog budget of one trial.

    ``REPRO_HANG_FACTOR`` times the golden run's total cycles (floored at
    :data:`TRIAL_CYCLE_FLOOR`): per-launch budgets catch a kernel that
    loops, but only this cumulative bound catches a host convergence loop
    that a persistent fault keeps re-launching forever.
    """
    factor = get_settings().hang_factor
    return max(TRIAL_CYCLE_FLOOR,
               int(factor * max(profile.total_cycles, 1)))


def _gpu_factory(profile: AppProfile, config: GPUConfig):
    """Fresh budget-configured GPUs for the runner (start-up, worker
    processes, and post-crash replacement — a trial that blew up may have
    left the device corrupted)."""
    watchdog = trial_cycle_budget(profile)

    def factory() -> GPU:
        gpu = GPU(config)
        gpu.cycle_budget_fn = _budget_fn(profile, config)
        gpu.trial_cycle_budget = watchdog
        return gpu

    return factory


def _kernel_rollup(gpu: GPU) -> dict[str, dict[str, int]]:
    """Per-kernel LaunchStats rollup of one trial (small, summable
    counters only — the full snapshot would dominate the event stream)."""
    rollup: dict[str, dict[str, int]] = {}
    for rec in gpu.launch_records:
        roll = rollup.setdefault(
            rec.name, {"launches": 0, "cycles": 0, "warp_instructions": 0,
                       "thread_instructions": 0})
        roll["launches"] += 1
        roll["cycles"] += rec.stats.cycles
        roll["warp_instructions"] += rec.stats.warp_instructions
        roll["thread_instructions"] += rec.stats.thread_instructions
    return rollup


def _injection_trial_fn(app, profile, harness_factory, plan_fn,
                        injector_attr, injector_cls,
                        sdc_anatomy=False, site_fn=None):
    """The one trial body all campaign levels share: plan a fault for the
    trial seed, arm the injector, run the app, classify.

    ``plan_fn(trial_seed)`` produces the fault plan; ``injector_attr`` is
    the GPU hook the plan's injector arms (``uarch_injector`` or
    ``sw_injector``). Telemetry (when the runner installed an emitter for
    this process) gets ``inject.plan`` / ``classify`` phase spans and a
    per-trial per-kernel LaunchStats rollup; the disabled path adds
    nothing but one attribute check.

    With ``sdc_anatomy`` on, SDC trials return a third element — the
    anatomy record of :func:`repro.sdc.analyze_sdc`, tagged with
    ``site_fn(plan)`` (the injected structure / instruction class) — which
    the runner journals and tallies. With it off, trials return the legacy
    two-tuple, keeping journals byte-identical."""
    if sdc_anatomy:
        from repro.sdc import analyze_sdc  # deferred: fi never needs it
                                           # unless a spec opts in

    def trial_fn(gpu: GPU, trial_seed: int):
        tel = current_telemetry()
        if tel.enabled:
            with tel.span("inject.plan"):
                plan = plan_fn(trial_seed)
        else:
            plan = plan_fn(trial_seed)
        if getattr(plan, "corrected_by_ecc", False):
            # Provably architecturally silent: no need to simulate. The
            # baseline cycle count keeps it out of the control-path tally.
            return FaultOutcome.MASKED, profile.total_cycles
        gpu.reset()
        setattr(gpu, injector_attr, injector_cls(plan))
        harness = harness_factory() if harness_factory else DeviceHarness()
        try:
            if tel.enabled:
                with tel.span("classify"):
                    outcome, cycles, outputs = _classify(
                        app, gpu, harness, profile.golden)
                tel.emit("kernels", kernels=_kernel_rollup(gpu))
            else:
                outcome, cycles, outputs = _classify(app, gpu, harness,
                                                     profile.golden)
            if not sdc_anatomy:
                return outcome, cycles
            if outcome is not FaultOutcome.SDC:
                return outcome, cycles, None
            site = site_fn(plan) if site_fn is not None else ""
            return outcome, cycles, analyze_sdc(
                app.name, outputs, profile.golden, site)
        finally:
            setattr(gpu, injector_attr, None)

    return trial_fn


def _anatomy_aggregate(tally) -> dict:
    """Fold the runner's per-trial anatomy records into the
    :attr:`CampaignResult.sdc_anatomy` payload."""
    records = list(tally.sdc_records)
    critical = sum(1 for r in records if r.get("severity") == "critical")
    return {"tolerable": len(records) - critical, "critical": critical,
            "records": records}


def _journal_meta(level: str, app, kernel: str, tag: str, seed: int,
                  trials: int, trials_from_env: bool,
                  extra: dict | None = None) -> dict:
    """Campaign identity written to the journal's leading ``meta`` record,
    so ``campaign status`` can tell resumable journals from stale ones.
    ``extra`` carries non-default identity axes (fault model/target) —
    absent by default so legacy journals keep their exact shape."""
    meta = {
        "level": level, "app": app.name, "kernel": kernel, "tag": tag,
        "root_seed": seed, "trials": trials,
        "trials_from_env": trials_from_env, "cache_version": CACHE_VERSION,
    }
    if extra:
        meta.update(extra)
    return meta


def _campaign_telemetry(key: str, telemetry: bool | None,
                        session: "TelemetrySession | None"):
    """Resolve one campaign's telemetry emitter after a cache miss.

    ``telemetry`` is the spec's tri-state flag (``None`` → the
    ``REPRO_TELEMETRY`` default, except a caller-supplied session counts
    as opting in). Returns ``(tel, session, owns_session)`` — a campaign
    that created its own session (default path keyed by the cache key)
    must close it; caller-owned sessions are left open.
    """
    if telemetry is None:
        enabled = session is not None or get_settings().telemetry
    else:
        enabled = telemetry
    if not enabled:
        return NULL, session, False
    owns = session is None
    if owns:
        session = TelemetrySession(telemetry_events_path(key))
    return session.telemetry(key), session, owns


def _record_to_ledger(key: str, result: CampaignResult,
                      session: "TelemetrySession | None") -> None:
    """Run-ledger completion hook (``REPRO_STORE``, default on).

    Observation-only and off the trial hot path: one upsert per finished
    campaign, plus one perf sample folded from the telemetry stream when
    the campaign kept one. Every failure downgrades to a warning — a
    locked or read-only ledger must never fail a campaign, and the hook
    touches nothing the campaign produced (keys, journals, tallies and
    payloads are identical with the store on or off).
    """
    if not get_settings().store:
        return
    try:
        from repro.store import record_completed_campaign  # late: only
                                                           # recorders pay
                                                           # the import
        events_path = None
        if session is not None and session.events_written:
            session.flush()
            events_path = session.path
        record_completed_campaign(key, result.to_dict(),
                                  events_path=events_path)
    except Exception as exc:
        log.warning("run ledger record failed for campaign %s: %s", key, exc)


def _microarch_campaign(
    app, kernel, structure, config, *, trials, seed, harness_factory,
    hardened, harden, use_cache, profile, profile_supplier, num_bits,
    ecc_protected, fault_model, target, max_failure_rate, progress, workers,
    worker_progress, sdc_anatomy, telemetry, telemetry_session,
    stop_rule, budget,
) -> CampaignResult:
    from repro.fi.avf import derating_factor  # local: avoid import cycle

    trials_from_env = trials is None and budget is None
    trials = trials if trials is not None else default_trials()
    # An explicit budget caps the adaptive plan regardless of `trials`;
    # the key's "trials" entry is always the planned count, so a
    # budget-100 spec and a trials-100 spec with the same rule (which
    # behave identically) share one cache entry.
    planned = budget if budget is not None else trials
    # Control-target campaigns have no storage structure; "control" stands
    # in wherever a structure name keys or labels things.
    structure_name = structure.value if structure is not None else "control"
    new_models = fault_model != "transient" or target != "storage"
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": "uarch",
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "structure": structure_name,
            "config": config.name,
            "trials": planned,
            "seed": seed,
            "hardened": hardened,
            "num_bits": num_bits,
            "ecc": ecc_protected,
            # Only present when on: off-path keys keep their legacy shape.
            **({"sdc_anatomy": True} if sdc_anatomy else {}),
            **({"harden": harden} if harden else {}),
            **({"fault_model": fault_model}
               if fault_model != "transient" else {}),
            **({"target": target} if target != "storage" else {}),
            **({"stop_rule": stop_rule.to_payload()}
               if stop_rule is not None else {}),
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            if telemetry_session is not None:
                telemetry_session.telemetry(key).emit(
                    "cache", op="load", hit=True)
            return CampaignResult.from_dict(cached)

    tel, session, owns_session = _campaign_telemetry(
        key, telemetry, telemetry_session)
    try:
        if tel.enabled and use_cache:
            tel.emit("cache", op="load", hit=False)
        if profile is None:
            with tel.span("golden_run"):
                profile = (profile_supplier() if profile_supplier is not None
                           else profile_app(app, config, harness_factory))
        launches = profile.kernel_launches(kernel)
        if not launches:
            raise PlanningError(
                f"{app.name} has no launches of kernel {kernel!r}")

        tag = (f"{app.name}/{kernel}/uarch/{structure_name}"
               f"/{config.name}/{hardened}")
        if new_models:
            # Non-default axes get their own seed stream and journal/
            # telemetry identity; the legacy tag (and thus the trial seeds)
            # is untouched when the new models are off.
            tag += f"/{fault_model}/{target}"
        if harden:
            tag += f"/{harden}"
        model_tags = ({"fault_model": fault_model, "target": target}
                      if new_models else None)
        meta_extra = dict(model_tags or {})
        if harden:
            meta_extra["harden"] = harden
        context = f"{app.name}/{kernel}"
        tally = execute_trials(
            key=key,
            seeds=spawn_seeds(seed, tag, planned),
            trial_fn=_injection_trial_fn(
                app, profile, harness_factory,
                lambda s: plan_microarch_fault(launches, structure, s,
                                               num_bits, ecc_protected,
                                               fault_model, target,
                                               context=context),
                "uarch_injector", MicroarchInjector,
                sdc_anatomy=sdc_anatomy,
                site_fn=lambda plan: structure_name),
            gpu_factory=_gpu_factory(profile, config),
            baseline_cycles=profile.total_cycles,
            max_failure_rate=max_failure_rate,
            progress=progress,
            journal=use_cache,
            workers=workers,
            worker_progress=worker_progress,
            meta=_journal_meta("uarch", app, kernel, tag, seed, planned,
                               trials_from_env, extra=meta_extra or None),
            telemetry=tel,
            event_tags=model_tags,
            stop_rule=stop_rule,
        )

        result = CampaignResult(
            app_name=app.name,
            kernel=kernel,
            injector="uarch",
            structure=structure.value if structure is not None else None,
            trials=(tally.counts.total if stop_rule is not None
                    else trials),
            seed=seed,
            config_name=config.name,
            counts=tally.counts,
            derating_factor=(derating_factor(structure, launches, config)
                             if structure is not None else 1.0),
            kernel_cycles=profile.kernel_cycles(kernel),
            kernel_instructions=profile.kernel_instructions(kernel),
            control_path_masked=tally.control_path_masked,
            hardened=hardened,
            harden=harden,
            fault_model=fault_model,
            fault_target=target,
            sdc_anatomy=_anatomy_aggregate(tally) if sdc_anatomy else None,
            planned_trials=planned if stop_rule is not None else None,
            stop_rule=(stop_rule.to_payload() if stop_rule is not None
                       else None),
        )
        if use_cache:
            with tel.span("cache.store"):
                _cache_store(key, result.to_dict())
        _record_to_ledger(key, result, session)
        return result
    finally:
        if owns_session:
            session.close()


def _software_campaign(
    app, kernel, config, *, trials, seed, loads_only, harness_factory,
    hardened, harden, use_cache, profile, profile_supplier,
    max_failure_rate, progress, workers, worker_progress, sdc_anatomy,
    telemetry, telemetry_session, stop_rule, budget,
) -> CampaignResult:
    trials_from_env = trials is None and budget is None
    trials = trials if trials is not None else default_trials()
    planned = budget if budget is not None else trials
    injector_kind = "sw-ld" if loads_only else "sw"
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": injector_kind,
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "config": config.name,
            "trials": planned,
            "seed": seed,
            "hardened": hardened,
            **({"sdc_anatomy": True} if sdc_anatomy else {}),
            **({"harden": harden} if harden else {}),
            **({"stop_rule": stop_rule.to_payload()}
               if stop_rule is not None else {}),
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            if telemetry_session is not None:
                telemetry_session.telemetry(key).emit(
                    "cache", op="load", hit=True)
            return CampaignResult.from_dict(cached)

    tel, session, owns_session = _campaign_telemetry(
        key, telemetry, telemetry_session)
    try:
        if tel.enabled and use_cache:
            tel.emit("cache", op="load", hit=False)
        if profile is None:
            with tel.span("golden_run"):
                profile = (profile_supplier() if profile_supplier is not None
                           else profile_app(app, config, harness_factory))
        launches = profile.kernel_launches(kernel)
        if not launches:
            raise PlanningError(
                f"{app.name} has no launches of kernel {kernel!r}")

        sw_launches = profile.kernel_launches(kernel, include_post=False)
        context = f"{app.name}/{kernel}"
        tag = f"{app.name}/{kernel}/{injector_kind}/{config.name}/{hardened}"
        if harden:
            tag += f"/{harden}"
        tally = execute_trials(
            key=key,
            seeds=spawn_seeds(seed, tag, planned),
            trial_fn=_injection_trial_fn(
                app, profile, harness_factory,
                lambda s: plan_software_fault(sw_launches, s, loads_only,
                                              context=context),
                "sw_injector", SoftwareInjector,
                sdc_anatomy=sdc_anatomy,
                site_fn=lambda plan: plan.injected_class or injector_kind),
            gpu_factory=_gpu_factory(profile, config),
            baseline_cycles=profile.total_cycles,
            max_failure_rate=max_failure_rate,
            progress=progress,
            journal=use_cache,
            workers=workers,
            worker_progress=worker_progress,
            meta=_journal_meta(injector_kind, app, kernel, tag, seed,
                               planned, trials_from_env,
                               extra={"harden": harden} if harden else None),
            telemetry=tel,
            stop_rule=stop_rule,
        )

        result = CampaignResult(
            app_name=app.name,
            kernel=kernel,
            injector=injector_kind,
            structure=None,
            trials=(tally.counts.total if stop_rule is not None
                    else trials),
            seed=seed,
            config_name=config.name,
            counts=tally.counts,
            derating_factor=1.0,  # software-level FI needs no derating (paper II-C)
            kernel_cycles=profile.kernel_cycles(kernel),
            kernel_instructions=sum(
                l["injectable_loads" if loads_only else "injectable"]
                for l in sw_launches
            ),
            control_path_masked=tally.control_path_masked,
            hardened=hardened,
            harden=harden,
            sdc_anatomy=_anatomy_aggregate(tally) if sdc_anatomy else None,
            planned_trials=planned if stop_rule is not None else None,
            stop_rule=(stop_rule.to_payload() if stop_rule is not None
                       else None),
        )
        if use_cache:
            with tel.span("cache.store"):
                _cache_store(key, result.to_dict())
        _record_to_ledger(key, result, session)
        return result
    finally:
        if owns_session:
            session.close()


def _source_campaign(
    app, kernel, config, *, trials, seed, sticky, use_cache, profile,
    max_failure_rate, progress, workers, worker_progress, sdc_anatomy,
    telemetry, telemetry_session, stop_rule, budget,
) -> CampaignResult:
    from repro.fi.svf_modes import SourceInjector, plan_source_fault

    trials_from_env = trials is None and budget is None
    trials = trials if trials is not None else default_trials()
    planned = budget if budget is not None else trials
    injector_kind = "sw-src-sticky" if sticky else "sw-src-transient"
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": injector_kind,
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "config": config.name,
            "trials": planned,
            "seed": seed,
            **({"sdc_anatomy": True} if sdc_anatomy else {}),
            **({"stop_rule": stop_rule.to_payload()}
               if stop_rule is not None else {}),
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            if telemetry_session is not None:
                telemetry_session.telemetry(key).emit(
                    "cache", op="load", hit=True)
            return CampaignResult.from_dict(cached)

    tel, session, owns_session = _campaign_telemetry(
        key, telemetry, telemetry_session)
    try:
        if tel.enabled and use_cache:
            tel.emit("cache", op="load", hit=False)
        if profile is None:
            with tel.span("golden_run"):
                profile = profile_app(app, config)
        launches = profile.kernel_launches(kernel)
        if not launches:
            raise PlanningError(
                f"{app.name} has no launches of kernel {kernel!r}")

        context = f"{app.name}/{kernel}"
        tag = f"{app.name}/{kernel}/{injector_kind}/{config.name}"
        tally = execute_trials(
            key=key,
            seeds=spawn_seeds(seed, tag, planned),
            trial_fn=_injection_trial_fn(
                app, profile, None,
                lambda s: plan_source_fault(launches, s, sticky,
                                            context=context),
                "sw_injector", SourceInjector,
                sdc_anatomy=sdc_anatomy,
                site_fn=lambda plan: "src"),
            gpu_factory=_gpu_factory(profile, config),
            baseline_cycles=profile.total_cycles,
            max_failure_rate=max_failure_rate,
            progress=progress,
            journal=use_cache,
            workers=workers,
            worker_progress=worker_progress,
            meta=_journal_meta(injector_kind, app, kernel, tag, seed,
                               planned, trials_from_env),
            telemetry=tel,
            stop_rule=stop_rule,
        )

        result = CampaignResult(
            app_name=app.name,
            kernel=kernel,
            injector=injector_kind,
            structure=None,
            trials=(tally.counts.total if stop_rule is not None
                    else trials),
            seed=seed,
            config_name=config.name,
            counts=tally.counts,
            derating_factor=1.0,
            kernel_cycles=profile.kernel_cycles(kernel),
            kernel_instructions=profile.kernel_instructions(kernel),
            control_path_masked=tally.control_path_masked,
            hardened=False,
            sdc_anatomy=_anatomy_aggregate(tally) if sdc_anatomy else None,
            planned_trials=planned if stop_rule is not None else None,
            stop_rule=(stop_rule.to_payload() if stop_rule is not None
                       else None),
        )
        if use_cache:
            with tel.span("cache.store"):
                _cache_store(key, result.to_dict())
        _record_to_ledger(key, result, session)
        return result
    finally:
        if owns_session:
            session.close()
