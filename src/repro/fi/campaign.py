"""Statistical fault-injection campaigns.

A campaign profiles the application fault-free (golden outputs, per-launch
cycles and dynamic-instruction counts), then runs N injected trials, each on
a reset device with one planned fault, and tallies the outcome classes.

Results are cached as JSON under ``.repro_cache/`` keyed by every parameter
that affects the outcome, so experiments and benchmarks sharing campaigns
(Figs. 1, 2, 4, 5, Table I all reuse the same base campaigns) never redo
simulation work.

Trial loops are delegated to the resilient execution engine in
:mod:`repro.fi.runner`: trials are journaled as they complete (killed
campaigns resume where they stopped), unexpected trial exceptions are
isolated and retried instead of aborting the campaign, and cache writes
are atomic (temp file + ``os.replace``) so readers never see torn JSON.

Environment knobs:

* ``REPRO_TRIALS`` — override the default trials per campaign cell.
* ``REPRO_CACHE_DIR`` — cache location (default ``.repro_cache``).
* ``REPRO_MAX_TRIAL_FAILURES`` — tolerated crash fraction (default 0.1).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass

from repro.arch.config import GPUConfig
from repro.arch.structures import Structure
from repro.errors import ConfigError, ExecutionError, SimTimeout
from repro.fi.gpufi import MicroarchInjector, plan_microarch_fault
from repro.fi.journal import cache_dir
from repro.fi.nvbitfi import SoftwareInjector, plan_software_fault
from repro.fi.outcomes import FaultOutcome, OutcomeCounts
from repro.fi.runner import ProgressFn, execute_trials
from repro.kernels.base import DeviceHarness, GPUApplication, outputs_equal
from repro.sim.gpu import GPU
from repro.utils.rng import spawn_seeds

__all__ = [
    "AppProfile", "CampaignResult", "cache_dir", "default_trials",
    "profile_app", "run_microarch_campaign", "run_software_campaign",
    "run_source_campaign", "CACHE_VERSION", "DEFAULT_TRIALS",
]

log = logging.getLogger(__name__)

#: Bump to invalidate every cached campaign result after a model change.
#: v9: crash-outcome class + classified-trial normalization.
CACHE_VERSION = 9

#: Paper: 3000 trials per cell (±2.35 % @ 99 %). Scaled for one CPU core;
#: the experiment reports quote the margin of error for the n actually used.
DEFAULT_TRIALS = 64


def default_trials() -> int:
    env = os.environ.get("REPRO_TRIALS")
    if not env:
        return DEFAULT_TRIALS
    try:
        trials = int(env)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRIALS must be a positive integer, got {env!r}"
        ) from None
    if trials <= 0:
        raise ConfigError(
            f"REPRO_TRIALS must be a positive integer, got {trials}"
        )
    return trials


def _matches_kernel(launch_name: str, kernel: str) -> bool:
    """A launch belongs to a kernel if it is the kernel or its vote step."""
    return launch_name == kernel or launch_name.startswith(kernel + "@")


@dataclass
class AppProfile:
    """Fault-free profile of one application on one configuration."""

    app_name: str
    config_name: str
    launches: list[dict]  # per-launch: index,name,cycles,injectable,...
    golden: dict  # output name -> ndarray
    total_cycles: int
    stats_by_launch: list[dict]

    def kernel_launches(self, kernel: str, include_post: bool = True
                        ) -> list[dict]:
        """Launches of a kernel; ``include_post=False`` drops hardening
        post-processing steps (``<kernel>@vote``) — the software-level
        injector only sees the computational kernel (NVBitFI instruments
        the kernel, not the TMR vote), while the cross-layer evaluation
        covers the whole hardened unit."""
        recs = [l for l in self.launches if _matches_kernel(l["name"], kernel)]
        if not include_post:
            recs = [l for l in recs if "@" not in l["name"]]
        return recs

    def kernel_cycles(self, kernel: str) -> int:
        return sum(l["cycles"] for l in self.kernel_launches(kernel))

    def kernel_instructions(self, kernel: str) -> int:
        return sum(l["injectable"] for l in self.kernel_launches(kernel))

    def kernel_loads(self, kernel: str) -> int:
        return sum(l["injectable_loads"] for l in self.kernel_launches(kernel))


def profile_app(
    app: GPUApplication,
    config: GPUConfig,
    harness_factory=None,
) -> AppProfile:
    """Run the application fault-free and collect its profile."""
    gpu = GPU(config)
    harness = harness_factory() if harness_factory else DeviceHarness()
    golden = app.run(gpu, harness)
    harness.finalize(gpu)
    launches = []
    stats_by_launch = []
    for rec in gpu.launch_records:
        launches.append(
            {
                "index": rec.index,
                "name": rec.name,
                "cycles": rec.stats.cycles,
                "injectable": rec.stats.sw_injectable_instructions,
                "injectable_loads": rec.stats.sw_injectable_loads,
                "threads": rec.stats.threads_launched,
                "ctas": rec.stats.ctas_launched,
                "regs_per_thread": rec.stats.regs_per_thread,
                "smem_bytes_per_cta": rec.stats.smem_bytes_per_cta,
            }
        )
        stats_by_launch.append(rec.stats.snapshot(config))
    return AppProfile(
        app_name=app.name,
        config_name=config.name,
        launches=launches,
        golden=golden,
        total_cycles=sum(l["cycles"] for l in launches),
        stats_by_launch=stats_by_launch,
    )


@dataclass
class CampaignResult:
    """Outcome tally + the profile-derived weights the AVF/SVF math needs."""

    app_name: str
    kernel: str
    injector: str  # "uarch" | "sw" | "sw-ld"
    structure: str | None
    trials: int
    seed: int
    config_name: str
    counts: OutcomeCounts
    derating_factor: float = 1.0
    kernel_cycles: int = 0
    kernel_instructions: int = 0
    control_path_masked: int = 0  # masked trials whose cycle count changed
    hardened: bool = False

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["counts"] = self.counts.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignResult":
        d = dict(d)
        d["counts"] = OutcomeCounts.from_dict(d["counts"])
        return cls(**d)


def _cache_key(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _cache_load(key: str) -> dict | None:
    path = cache_dir() / f"{key}.json"
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        log.warning("campaign cache %s unreadable (%s); re-running the "
                    "campaign", path, exc)
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        # Quarantine rather than silently re-simulating forever: the rename
        # both surfaces the corruption and unblocks the next _cache_store.
        quarantine = path.with_suffix(".json.corrupt")
        try:
            os.replace(path, quarantine)
            log.warning("campaign cache %s is corrupt (%s); quarantined as "
                        "%s and re-running the campaign", path.name, exc,
                        quarantine.name)
        except OSError as rename_exc:
            log.warning("campaign cache %s is corrupt (%s) and could not be "
                        "quarantined (%s)", path.name, exc, rename_exc)
        return None


def _cache_store(key: str, payload: dict) -> None:
    """Atomically persist one campaign result.

    The payload lands in a temp file in the cache directory first and is
    renamed over the final name only once fully written and fsynced, so a
    crash mid-write can never leave a torn ``<key>.json`` and concurrent
    readers always see either nothing or one complete payload.
    """
    d = cache_dir()
    d.mkdir(parents=True, exist_ok=True)
    path = d / f"{key}.json"
    fd, tmp = tempfile.mkstemp(dir=str(d), prefix=f".{key}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(json.dumps(payload, sort_keys=True))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _budget_fn(profile: AppProfile, config: GPUConfig):
    cycles = [l["cycles"] for l in profile.launches]

    def fn(launch_index: int, kernel_name: str) -> int:
        if launch_index < len(cycles):
            return config.timeout_cycles(cycles[launch_index])
        # Extra, unprofiled launches (fault-perturbed host loops) get the
        # budget of the longest profiled launch.
        return config.timeout_cycles(max(cycles) if cycles else 0)

    return fn


def _classify(app, gpu, harness, golden) -> tuple[FaultOutcome, int]:
    """Run once under injection; returns (outcome, total cycles executed)."""
    try:
        outputs = app.run(gpu, harness)
        harness.finalize(gpu)
    except SimTimeout:
        return FaultOutcome.TIMEOUT, _total_cycles(gpu)
    except ExecutionError:
        return FaultOutcome.DUE, _total_cycles(gpu)
    cycles = _total_cycles(gpu)
    if outputs_equal(outputs, golden):
        return FaultOutcome.MASKED, cycles
    return FaultOutcome.SDC, cycles


def _total_cycles(gpu: GPU) -> int:
    return sum(rec.stats.cycles for rec in gpu.launch_records)


def _gpu_factory(profile: AppProfile, config: GPUConfig):
    """Fresh budget-configured GPUs for the runner (start-up and post-crash
    replacement — a trial that blew up may have left the device corrupted)."""

    def factory() -> GPU:
        gpu = GPU(config)
        gpu.cycle_budget_fn = _budget_fn(profile, config)
        return gpu

    return factory


def _injection_trial_fn(app, profile, harness_factory, plan_fn,
                        injector_attr, injector_cls):
    """The one trial body all three campaign flavors share: plan a fault
    for the trial seed, arm the injector, run the app, classify.

    ``plan_fn(trial_seed)`` produces the fault plan; ``injector_attr`` is
    the GPU hook the plan's injector arms (``uarch_injector`` or
    ``sw_injector``)."""

    def trial_fn(gpu: GPU, trial_seed: int):
        plan = plan_fn(trial_seed)
        if getattr(plan, "corrected_by_ecc", False):
            # Provably architecturally silent: no need to simulate. The
            # baseline cycle count keeps it out of the control-path tally.
            return FaultOutcome.MASKED, profile.total_cycles
        gpu.reset()
        setattr(gpu, injector_attr, injector_cls(plan))
        harness = harness_factory() if harness_factory else DeviceHarness()
        try:
            return _classify(app, gpu, harness, profile.golden)
        finally:
            setattr(gpu, injector_attr, None)

    return trial_fn


def run_microarch_campaign(
    app: GPUApplication,
    kernel: str,
    structure: Structure,
    config: GPUConfig,
    trials: int | None = None,
    seed: int = 1,
    harness_factory=None,
    hardened: bool = False,
    use_cache: bool = True,
    profile: AppProfile | None = None,
    profile_supplier=None,
    num_bits: int = 1,
    ecc_protected: bool = False,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Statistical microarchitecture-level FI against one kernel/structure.

    ``profile_supplier`` is an optional zero-arg callable evaluated only on a
    cache miss (keeps cache-hit paths free of simulation work).
    ``num_bits`` selects the fault model (1 = single-bit, 2 = adjacent
    double-bit); ``ecc_protected`` applies the SECDED model to the target
    structure (single-bit faults corrected without simulation, multi-bit
    faults detected as DUEs).

    ``max_failure_rate`` overrides ``REPRO_MAX_TRIAL_FAILURES`` and
    ``progress(completed, total, outcome)`` fires after every trial; see
    :mod:`repro.fi.runner` for the resilience semantics.
    """
    from repro.fi.avf import derating_factor  # local: avoid import cycle

    trials = trials if trials is not None else default_trials()
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": "uarch",
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "structure": structure.value,
            "config": config.name,
            "trials": trials,
            "seed": seed,
            "hardened": hardened,
            "num_bits": num_bits,
            "ecc": ecc_protected,
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            return CampaignResult.from_dict(cached)

    if profile is None:
        profile = (profile_supplier() if profile_supplier is not None
                   else profile_app(app, config, harness_factory))
    launches = profile.kernel_launches(kernel)
    if not launches:
        raise ValueError(f"{app.name} has no launches of kernel {kernel!r}")

    tag = f"{app.name}/{kernel}/uarch/{structure.value}/{config.name}/{hardened}"
    tally = execute_trials(
        key=key,
        seeds=spawn_seeds(seed, tag, trials),
        trial_fn=_injection_trial_fn(
            app, profile, harness_factory,
            lambda s: plan_microarch_fault(launches, structure, s,
                                           num_bits, ecc_protected),
            "uarch_injector", MicroarchInjector),
        gpu_factory=_gpu_factory(profile, config),
        baseline_cycles=profile.total_cycles,
        max_failure_rate=max_failure_rate,
        progress=progress,
        journal=use_cache,
    )

    result = CampaignResult(
        app_name=app.name,
        kernel=kernel,
        injector="uarch",
        structure=structure.value,
        trials=trials,
        seed=seed,
        config_name=config.name,
        counts=tally.counts,
        derating_factor=derating_factor(structure, launches, config),
        kernel_cycles=profile.kernel_cycles(kernel),
        kernel_instructions=profile.kernel_instructions(kernel),
        control_path_masked=tally.control_path_masked,
        hardened=hardened,
    )
    if use_cache:
        _cache_store(key, result.to_dict())
    return result


def run_software_campaign(
    app: GPUApplication,
    kernel: str,
    config: GPUConfig,
    trials: int | None = None,
    seed: int = 1,
    loads_only: bool = False,
    harness_factory=None,
    hardened: bool = False,
    use_cache: bool = True,
    profile: AppProfile | None = None,
    profile_supplier=None,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Statistical software-level (NVBitFI-style) FI against one kernel.

    ``profile_supplier`` is an optional zero-arg callable evaluated only on a
    cache miss. ``max_failure_rate``/``progress`` as in
    :func:`run_microarch_campaign`.
    """
    trials = trials if trials is not None else default_trials()
    injector_kind = "sw-ld" if loads_only else "sw"
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": injector_kind,
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "config": config.name,
            "trials": trials,
            "seed": seed,
            "hardened": hardened,
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            return CampaignResult.from_dict(cached)

    if profile is None:
        profile = (profile_supplier() if profile_supplier is not None
                   else profile_app(app, config, harness_factory))
    launches = profile.kernel_launches(kernel)
    if not launches:
        raise ValueError(f"{app.name} has no launches of kernel {kernel!r}")

    sw_launches = profile.kernel_launches(kernel, include_post=False)
    tag = f"{app.name}/{kernel}/{injector_kind}/{config.name}/{hardened}"
    tally = execute_trials(
        key=key,
        seeds=spawn_seeds(seed, tag, trials),
        trial_fn=_injection_trial_fn(
            app, profile, harness_factory,
            lambda s: plan_software_fault(sw_launches, s, loads_only),
            "sw_injector", SoftwareInjector),
        gpu_factory=_gpu_factory(profile, config),
        baseline_cycles=profile.total_cycles,
        max_failure_rate=max_failure_rate,
        progress=progress,
        journal=use_cache,
    )

    result = CampaignResult(
        app_name=app.name,
        kernel=kernel,
        injector=injector_kind,
        structure=None,
        trials=trials,
        seed=seed,
        config_name=config.name,
        counts=tally.counts,
        derating_factor=1.0,  # software-level FI needs no derating (paper II-C)
        kernel_cycles=profile.kernel_cycles(kernel),
        kernel_instructions=sum(
            l["injectable_loads" if loads_only else "injectable"]
            for l in sw_launches
        ),
        control_path_masked=tally.control_path_masked,
        hardened=hardened,
    )
    if use_cache:
        _cache_store(key, result.to_dict())
    return result


def run_source_campaign(
    app: GPUApplication,
    kernel: str,
    config: GPUConfig,
    trials: int | None = None,
    seed: int = 1,
    sticky: bool = False,
    use_cache: bool = True,
    profile: AppProfile | None = None,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Source-register software-level FI (the paper's Section V-B models).

    ``sticky=False`` is the naive model (the fault affects one dynamic
    instruction only); ``sticky=True`` is the register-reuse-augmented model
    (the fault persists until the register is overwritten, as a hardware
    register fault would). Comparing the two isolates the error the paper
    attributes to ignoring register reuse.
    """
    from repro.fi.svf_modes import SourceInjector, plan_source_fault

    trials = trials if trials is not None else default_trials()
    injector_kind = "sw-src-sticky" if sticky else "sw-src-transient"
    key = _cache_key(
        {
            "v": CACHE_VERSION,
            "kind": injector_kind,
            "app": app.name,
            "app_seed": app.seed,
            "kernel": kernel,
            "config": config.name,
            "trials": trials,
            "seed": seed,
        }
    )
    if use_cache:
        cached = _cache_load(key)
        if cached is not None:
            return CampaignResult.from_dict(cached)

    if profile is None:
        profile = profile_app(app, config)
    launches = profile.kernel_launches(kernel)
    if not launches:
        raise ValueError(f"{app.name} has no launches of kernel {kernel!r}")

    tag = f"{app.name}/{kernel}/{injector_kind}/{config.name}"
    tally = execute_trials(
        key=key,
        seeds=spawn_seeds(seed, tag, trials),
        trial_fn=_injection_trial_fn(
            app, profile, None,
            lambda s: plan_source_fault(launches, s, sticky),
            "sw_injector", SourceInjector),
        gpu_factory=_gpu_factory(profile, config),
        baseline_cycles=profile.total_cycles,
        max_failure_rate=max_failure_rate,
        progress=progress,
        journal=use_cache,
    )

    result = CampaignResult(
        app_name=app.name,
        kernel=kernel,
        injector=injector_kind,
        structure=None,
        trials=trials,
        seed=seed,
        config_name=config.name,
        counts=tally.counts,
        derating_factor=1.0,
        kernel_cycles=profile.kernel_cycles(kernel),
        kernel_instructions=profile.kernel_instructions(kernel),
        control_path_masked=tally.control_path_masked,
        hardened=False,
    )
    if use_cache:
        _cache_store(key, result.to_dict())
    return result
