"""Resilient campaign execution engine with an optional worker pool.

All statistical FI campaigns (dispatched through
:func:`repro.fi.campaign.run_campaign`) delegate their trial loops here.
The engine owns everything that is about *executing N trials reliably and
fast* rather than about *which fault to inject*:

* **Per-trial fault isolation** — an unexpected exception from one trial
  (anything but :class:`ExecutionError`/:class:`SimTimeout`, which the
  classifier already maps to DUE/Timeout) is caught, journaled with its
  traceback and trial seed, and retried once on a fresh :class:`GPU`. If
  the retry also fails the trial is tallied as the infrastructure outcome
  :attr:`FaultOutcome.CRASH` and the campaign moves on. A campaign whose
  crash fraction exceeds ``REPRO_MAX_TRIAL_FAILURES`` (default 10 %)
  raises :class:`CampaignError` instead of producing garbage statistics.

* **Journaled checkpoint/resume** — every completed trial is appended to
  ``.repro_cache/journal/<key>.jsonl`` (flush+fsync) before it is counted.
  A killed campaign resumes from the last completed trial on the next
  invocation; per-trial seeds from :func:`spawn_seeds` are deterministic,
  so the resumed run's final tallies are bit-for-bit identical to an
  uninterrupted run. Completed campaigns delete their journal (the result
  lives in the regular cache).

* **Parallel execution** — ``workers > 1`` fans the remaining trials out
  over a pool of forked worker processes (``REPRO_WORKERS``, ``auto`` =
  ``os.cpu_count() - 1``). The parent submits trial indices to the pool
  in *rounds* (each round strided across the workers in the same
  deterministic order as the historical static shards) and drains results
  as they arrive; it stays the **single writer** of the journal and
  commits results strictly in trial order, buffering out-of-order
  arrivals. A fixed-budget campaign submits everything in one round, so
  serial and parallel runs produce bit-identical journals, tallies, and
  cache payloads, and kill/resume works the same regardless of completion
  order. Platforms without the ``fork`` start method fall back to serial
  execution with a warning.

* **Adaptive early stopping** — an optional ``stop_rule`` (duck-typed;
  see :class:`repro.fi.planner.StopRule`) is evaluated against the
  committed in-order prefix after every commit (including journal
  replay). Once it is satisfied the campaign is *complete*: the journal
  is discarded, later-arriving pool results are dropped unjournaled, and
  the tally reports ``stopped_early``. Because the decision only ever
  looks at the committed prefix — which is identical at any worker count
  and across kill/resume — adaptive campaigns inherit every determinism
  guarantee of the fixed path. With a stop rule the parallel scheduler
  submits bounded chunks per round instead of one block, keeping at most
  a couple of rounds in flight so a satisfied rule wastes little work.

* **Progress reporting** — an optional ``progress`` callback fires after
  every committed trial (including trials replayed from the journal), in
  trial order; an optional ``worker_progress(worker_id, completed)``
  callback fires as results arrive from the pool, so the CLI can show
  live per-worker progress.

* **Per-trial extras** — a trial function may return a third element: a
  JSON-serializable dict (e.g. the SDC anatomy record of
  :func:`repro.sdc.analyze_sdc`). Extras ride along the whole pipeline —
  journaled as the trial record's ``"sdc"`` field, shipped from pool
  workers with the trial result, replayed on resume — and are collected
  in trial order on :attr:`TrialTally.sdc_records`. Trials without an
  extra journal exactly the legacy record, byte for byte.

* **Telemetry** — when a :class:`~repro.telemetry.events.Telemetry`
  emitter is passed in, the engine emits structured events (campaign
  begin/end, per-trial ``trial`` spans, ``journal.commit`` spans, one
  ``commit`` event per trial in order) on top of whatever the trial body
  emits through :func:`~repro.telemetry.events.current_telemetry`. Pool
  workers buffer their events and stream them to the parent alongside
  results — the parent stays the single writer of both the journal and
  the event file, and telemetry never touches journal records, tallies,
  or cache payloads.

Environment knobs (see :mod:`repro.config`):

* ``REPRO_MAX_TRIAL_FAILURES`` — max tolerated crash fraction (default 0.1).
* ``REPRO_WORKERS`` — default pool size (default 1 = serial).
* ``REPRO_TELEMETRY`` — default-enable campaign telemetry.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.config import DEFAULT_MAX_TRIAL_FAILURES, get_settings
from repro.errors import CampaignError, ConfigError, ExecutionError
from repro.fi.journal import CampaignJournal
from repro.fi.outcomes import FaultOutcome, OutcomeCounts
from repro.log import get_logger
from repro.telemetry.events import NULL, Telemetry, set_current_telemetry
from repro.utils.rng import spawn_seeds

__all__ = [
    "DEFAULT_MAX_TRIAL_FAILURES", "ProgressFn", "WorkerProgressFn",
    "TrialFn", "TrialTally", "execute_trials", "max_trial_failure_rate",
    "resolve_workers", "journal_validity",
]

log = get_logger(__name__)

#: ``progress(completed, total, outcome)`` — fired after every trial.
ProgressFn = Callable[[int, int, FaultOutcome], None]

#: ``worker_progress(worker_id, trials completed by that worker)`` —
#: fired in arrival order while the pool runs.
WorkerProgressFn = Callable[[int, int], None]

#: ``trial_fn(gpu, trial_seed) -> (outcome, total cycles executed)`` or
#: ``(outcome, cycles, extra)`` — ``extra`` is an optional JSON-serializable
#: dict of per-trial data (e.g. an SDC anatomy record) the engine journals
#: alongside the outcome (``"sdc"`` field) and collects on the tally.
TrialFn = Callable[[object, int], "tuple[FaultOutcome, int]"]


def max_trial_failure_rate() -> float:
    """The configured crash-fraction ceiling (``REPRO_MAX_TRIAL_FAILURES``)."""
    return get_settings().max_trial_failures


def resolve_workers(workers: int | None = None) -> int:
    """Effective pool size: explicit argument, else ``REPRO_WORKERS``."""
    if workers is None:
        return get_settings().workers
    if not isinstance(workers, int) or workers < 1:
        raise ConfigError(f"workers must be a positive integer, got {workers!r}")
    return workers


@dataclass
class TrialTally:
    """What the execution engine hands back to the campaign builders."""

    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    control_path_masked: int = 0  # masked trials whose cycle count changed
    resumed: int = 0  # trials replayed from the journal, not simulated
    crash_events: int = 0  # journaled crash *attempts* (>= counts.crash)
    workers: int = 1  # pool size the live trials actually ran with
    planned: int = 0  # trials the campaign was planned for (len(seeds))
    stopped_early: bool = False  # a stop rule fired before the plan ran dry
    rounds: int = 0  # chunked scheduling rounds submitted (pool path only)
    #: Per-trial extra records (``{"trial": i, **extra}``) in trial order —
    #: populated only by trial functions that return a third element.
    sdc_records: list[dict] = field(default_factory=list)

    @property
    def saved(self) -> int:
        """Planned trials an early stop made unnecessary."""
        return max(0, self.planned - self.counts.total)

    def _record(self, outcome: FaultOutcome, cycles: int,
                baseline_cycles: int) -> None:
        self.counts.add(outcome)
        if outcome is FaultOutcome.MASKED and cycles != baseline_cycles:
            self.control_path_masked += 1


def _stop_satisfied(stop_rule, tally: TrialTally) -> bool:
    """Evaluate the (duck-typed) stop rule on the committed prefix."""
    return stop_rule is not None and stop_rule.satisfied(tally.counts)


def _journal_prefix_valid(records: list[dict], seeds: list[int]) -> bool:
    """Trial records must be exactly trials 0..k-1 with the planned seeds."""
    for i, rec in enumerate(records):
        if i >= len(seeds):
            return False
        if rec.get("trial") != i or rec.get("seed") != seeds[i]:
            return False
        try:
            FaultOutcome(rec.get("outcome"))
            int(rec.get("cycles"))
        except (ValueError, TypeError):
            return False
    return True


def journal_validity(meta: dict | None, trial_records: list[dict],
                     current_trials: int,
                     current_cache_version: int) -> tuple[bool, str]:
    """Would this journal actually be resumed by a re-run today?

    Cross-checks a journal's ``meta`` record against the current
    configuration: a journal planned under a different ``REPRO_TRIALS``,
    an older cache version, or whose recorded trial seeds no longer match
    the seed sequence its meta record promises is orphaned — the re-run
    computes a different cache key (or discards the journal) and restarts
    from trial 0. Returns ``(resumable, reason)``.
    """
    if meta is None:
        return True, ""  # legacy journal without a meta record: unknown
    if meta.get("cache_version") != current_cache_version:
        return False, (f"cache version changed "
                       f"({meta.get('cache_version')} -> "
                       f"{current_cache_version})")
    if meta.get("trials_from_env") and meta.get("trials") != current_trials:
        return False, (f"REPRO_TRIALS changed (journal planned "
                       f"{meta.get('trials')}, now {current_trials})")
    try:
        planned = spawn_seeds(int(meta["root_seed"]), str(meta["tag"]),
                              int(meta["trials"]))
    except (KeyError, TypeError, ValueError):
        return False, "meta record is malformed"
    if not _journal_prefix_valid(trial_records, planned):
        return False, "recorded trial seeds no longer match the planned seeds"
    return True, ""


def _crash_record(trial: int, trial_seed: int, exc: BaseException,
                  tb: str, retry: bool) -> dict:
    return {"event": "crash", "trial": trial, "seed": trial_seed,
            "error": repr(exc), "traceback": tb, "retry": retry}


def _unpack_trial(result) -> "tuple[FaultOutcome, int, dict | None]":
    """Normalize a trial function's return value to (outcome, cycles,
    extra) — legacy two-tuples get ``extra=None``."""
    outcome, cycles, *rest = result
    return outcome, cycles, (rest[0] if rest else None)


def _attempt_trial(trial_fn: TrialFn, gpu, gpu_factory, trial_index: int,
                   trial_seed: int, on_crash):
    """One trial with the isolation contract: unexpected exceptions get one
    retry on a fresh GPU, a second failure becomes CRASH. Returns
    ``(outcome, cycles, extra, gpu)`` — the GPU is replaced after any
    failure, since the blown-up trial may have corrupted its state."""
    try:
        outcome, cycles, extra = _unpack_trial(trial_fn(gpu, trial_seed))
        return outcome, cycles, extra, gpu
    except ExecutionError:
        # SimTimeout/ExecutionError are fault effects the classifier
        # already maps to Timeout/DUE; one escaping the trial is a
        # harness bug the campaign must not paper over.
        raise
    except Exception as exc:
        log.warning("trial %d (seed %d) raised %r; retrying on a fresh GPU",
                    trial_index, trial_seed, exc)
        on_crash(exc, traceback.format_exc(), False)
        gpu = gpu_factory()
        try:
            outcome, cycles, extra = _unpack_trial(trial_fn(gpu, trial_seed))
            return outcome, cycles, extra, gpu
        except ExecutionError:
            raise
        except Exception as exc2:
            log.error("trial %d (seed %d) raised %r again on retry; "
                      "tallying as CRASH", trial_index, trial_seed, exc2)
            on_crash(exc2, traceback.format_exc(), True)
            return FaultOutcome.CRASH, 0, None, gpu_factory()


def _threshold_error(key: str, crash: int, total: int,
                     threshold: float) -> CampaignError:
    return CampaignError(
        f"campaign {key}: {crash}/{total} trials crashed with unexpected "
        f"exceptions, exceeding REPRO_MAX_TRIAL_FAILURES={threshold:.0%}; "
        f"see the journal ({CampaignJournal(key).path}) for tracebacks"
    )


def execute_trials(
    *,
    key: str,
    seeds: list[int],
    trial_fn: TrialFn,
    gpu_factory: Callable[[], object],
    baseline_cycles: int,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
    journal: bool = True,
    workers: int | None = None,
    worker_progress: WorkerProgressFn | None = None,
    meta: dict | None = None,
    telemetry: Telemetry | None = None,
    event_tags: dict | None = None,
    stop_rule=None,
) -> TrialTally:
    """Run one trial per seed with isolation, journaling and resume.

    ``trial_fn(gpu, trial_seed)`` plans and injects one fault, runs the
    application and returns ``(outcome, cycles)``; it must leave the GPU
    reusable (reset happens inside the trial). ``gpu_factory`` builds a
    fresh, budget-configured GPU — used at start-up and to replace a GPU
    whose state an unexpected exception may have corrupted.

    ``workers`` (default ``REPRO_WORKERS``) selects the trial-execution
    pool size; ``1`` is the serial path. ``meta`` is an optional dict of
    campaign identity fields written to the journal's leading ``meta``
    record (used by ``campaign status`` to detect stale journals).

    ``journal=False`` disables checkpointing (used by ``use_cache=False``
    campaigns, whose callers asked for a from-scratch run).

    ``telemetry`` is an optional event emitter (parent-process sink);
    when enabled the engine emits phase spans and per-trial events, and
    pool workers stream their events back through the parent. Results
    are unaffected either way. ``event_tags`` is an optional dict of
    campaign-identity fields (e.g. ``fault_model``/``target``) merged
    into the campaign-begin and per-trial ``commit`` events so event
    streams from different fault models stay distinguishable.

    ``stop_rule`` enables adaptive early stopping: any object exposing
    ``satisfied(counts) -> bool`` (and optionally ``min_trials`` /
    ``chunk`` for chunk sizing), evaluated on the committed in-order
    prefix after every commit. ``len(seeds)`` is then the trial *budget*
    rather than an exact count.
    """
    total = len(seeds)
    threshold = (max_failure_rate if max_failure_rate is not None
                 else max_trial_failure_rate())
    workers = resolve_workers(workers)
    tally = TrialTally()
    tally.planned = total
    jr = CampaignJournal(key) if journal else None
    tel = telemetry if telemetry is not None else NULL

    done = 0
    if jr is not None:
        records = jr.load()
        completed = [r for r in records if r.get("event") == "trial"]
        tally.crash_events = sum(
            1 for r in records if r.get("event") == "crash")
        if completed and not _journal_prefix_valid(completed, seeds):
            log.warning(
                "journal %s does not match the planned trial seeds "
                "(stale or foreign); discarding it and restarting", key)
            jr.discard()
            records = []
            completed = []
            tally.crash_events = 0
        if not records and meta is not None:
            jr.append({"event": "meta", **meta})
        for rec in completed:
            outcome = FaultOutcome(rec["outcome"])
            tally._record(outcome, int(rec["cycles"]), baseline_cycles)
            if isinstance(rec.get("sdc"), dict):
                tally.sdc_records.append({"trial": rec["trial"],
                                          **rec["sdc"]})
            done += 1
            if progress is not None:
                progress(done, total, outcome)
            if _stop_satisfied(stop_rule, tally):
                # The rule fires at the same committed prefix whether the
                # trials ran live or were replayed, so a resumed adaptive
                # campaign stops at the identical trial count (any journal
                # records past this point are discarded with the journal).
                tally.stopped_early = True
                break
        tally.resumed = done
        if done:
            log.info("campaign %s: resumed %d/%d trials from journal",
                     key, done, total)
            if tally.counts.crash / total > threshold:
                raise CampaignError(
                    f"campaign {key}: journal already records "
                    f"{tally.counts.crash}/{total} crashed trials, exceeding "
                    f"REPRO_MAX_TRIAL_FAILURES={threshold:.0%}"
                )

    remaining = total - done
    if remaining <= 0 or tally.stopped_early:
        if jr is not None:
            jr.discard()
        return tally

    if tel.enabled:
        tel.emit("campaign", phase="begin", key=key, total=total,
                 resumed=done, workers=workers, **(event_tags or {}))

    if workers > 1 and remaining > 1:
        if "fork" in multiprocessing.get_all_start_methods():
            tally.workers = min(workers, remaining)
            _execute_parallel(
                key=key, seeds=seeds, trial_fn=trial_fn,
                gpu_factory=gpu_factory, baseline_cycles=baseline_cycles,
                threshold=threshold, progress=progress,
                worker_progress=worker_progress, jr=jr, tally=tally,
                done=done, total=total, workers=tally.workers, tel=tel,
                event_tags=event_tags, stop_rule=stop_rule)
            if jr is not None:
                jr.discard()
            _emit_end(tel, key, tally, stop_rule)
            return tally
        log.warning("REPRO_WORKERS=%d requested but the 'fork' start method "
                    "is unavailable on this platform; running serially",
                    workers)

    _execute_serial(
        key=key, seeds=seeds, trial_fn=trial_fn, gpu_factory=gpu_factory,
        baseline_cycles=baseline_cycles, threshold=threshold,
        progress=progress, jr=jr, tally=tally, done=done, total=total,
        tel=tel, event_tags=event_tags, stop_rule=stop_rule)
    if jr is not None:
        jr.discard()
    _emit_end(tel, key, tally, stop_rule)
    return tally


def _emit_end(tel: Telemetry, key: str, tally: TrialTally,
              stop_rule) -> None:
    if not tel.enabled:
        return
    extra = ({"planned": tally.planned, "saved": tally.saved,
              "rounds": tally.rounds} if stop_rule is not None else {})
    tel.emit("campaign", phase="end", key=key,
             committed=tally.counts.total, **extra)


# --------------------------------------------------------------- serial path

def _execute_serial(*, key, seeds, trial_fn, gpu_factory, baseline_cycles,
                    threshold, progress, jr, tally, done, total,
                    tel=NULL, event_tags=None, stop_rule=None) -> None:
    prev_tel = set_current_telemetry(tel)
    try:
        if tel.enabled:
            with tel.span("sim.setup"):
                gpu = gpu_factory()
        else:
            gpu = gpu_factory()
        for i in range(done, total):
            trial_seed = seeds[i]

            def on_crash(exc, tb, retry, _i=i, _seed=trial_seed):
                tally.crash_events += 1
                if jr is not None:
                    jr.append(_crash_record(_i, _seed, exc, tb, retry))

            if tel.enabled:
                with tel.span("trial", trial=i):
                    outcome, cycles, extra, gpu = _attempt_trial(
                        trial_fn, gpu, gpu_factory, i, trial_seed, on_crash)
            else:
                outcome, cycles, extra, gpu = _attempt_trial(
                    trial_fn, gpu, gpu_factory, i, trial_seed, on_crash)

            tally._record(outcome, cycles, baseline_cycles)
            if extra is not None:
                tally.sdc_records.append({"trial": i, **extra})
            if jr is not None:
                record = {"event": "trial", "trial": i, "seed": trial_seed,
                          "outcome": outcome.value, "cycles": cycles}
                if extra is not None:
                    record["sdc"] = extra
                if tel.enabled:
                    with tel.span("journal.commit", trial=i):
                        jr.append(record)
                else:
                    jr.append(record)
            if tel.enabled:
                event_fields = dict(event_tags or {})
                if extra is not None:
                    event_fields["severity"] = extra.get("severity")
                tel.emit("commit", trial=i, outcome=outcome.value,
                         cycles=cycles, **event_fields)
            if progress is not None:
                progress(i + 1, total, outcome)

            if tally.counts.crash / total > threshold:
                raise _threshold_error(key, tally.counts.crash, total,
                                       threshold)
            if _stop_satisfied(stop_rule, tally):
                tally.stopped_early = True
                log.info("campaign %s: stop rule satisfied after %d/%d "
                         "trials", key, i + 1, total)
                break
    finally:
        set_current_telemetry(prev_tel)


# ------------------------------------------------------------- parallel path

def _shippable(exc: BaseException):
    """The exception itself if it survives a pickle round-trip (so the
    parent can re-raise the genuine type), else None."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return None


def _worker_main(worker_id: int, task_q, seeds: list[int],
                 trial_fn: TrialFn, gpu_factory, out_q,
                 tel_args: "tuple[str, float] | None" = None) -> None:
    """Worker-process body (reached via fork: closures need no pickling).

    Blocks on its private ``task_q`` for lists of trial indices (one list
    per scheduling round), runs them with the same isolation/retry
    contract as the serial path, and streams
    ``("trial", worker_id, index, outcome, cycles, extra, crash_records)``
    messages to the parent, which owns all journal writes. The worker's
    GPU state persists across rounds exactly as it persists across trials
    (each trial resets it). Any exception that must abort the campaign
    (an escaped :class:`ExecutionError`, KeyboardInterrupt, ...) is
    shipped as a ``("fatal", ...)`` message for the parent to re-raise;
    otherwise the worker runs until the parent terminates the pool.

    ``tel_args`` (``(campaign, t0)``, or None for telemetry off) wires a
    buffered event emitter: events accumulate locally and are flushed as
    ``("events", worker_id, [event, ...])`` messages — each flush queued
    *before* the trial result it belongs to, so the parent has written a
    trial's events by the time it commits the trial. The parent stays the
    single writer; journal records never interleave with event traffic.
    """
    buffer: list[dict] = []
    if tel_args is not None:
        campaign, t0 = tel_args
        tel = Telemetry(buffer.append, campaign=campaign, worker=worker_id,
                        t0=t0)
    else:
        tel = NULL
    set_current_telemetry(tel)
    try:
        if tel.enabled:
            with tel.span("sim.setup"):
                gpu = gpu_factory()
        else:
            gpu = gpu_factory()
        while True:
            indices = task_q.get()
            if indices is None:
                return
            for i in indices:
                crash_records: list[dict] = []

                def on_crash(exc, tb, retry, _i=i):
                    crash_records.append(
                        _crash_record(_i, seeds[_i], exc, tb, retry))

                if tel.enabled:
                    with tel.span("trial", trial=i):
                        outcome, cycles, extra, gpu = _attempt_trial(
                            trial_fn, gpu, gpu_factory, i, seeds[i],
                            on_crash)
                else:
                    outcome, cycles, extra, gpu = _attempt_trial(
                        trial_fn, gpu, gpu_factory, i, seeds[i], on_crash)
                if buffer:
                    out_q.put(("events", worker_id, buffer[:]))
                    buffer.clear()
                out_q.put(("trial", worker_id, i, outcome.value,
                           int(cycles), extra, crash_records))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        out_q.put(("fatal", worker_id, _shippable(exc), repr(exc),
                   traceback.format_exc()))


def _round_chunk(stop_rule, workers: int) -> int:
    """Trials per adaptive scheduling round: enough to keep every worker
    busy between refills without racing far past the stopping point."""
    chunk = getattr(stop_rule, "chunk", None)
    return chunk if chunk else max(2 * workers, 8)


def _execute_parallel(*, key, seeds, trial_fn, gpu_factory, baseline_cycles,
                      threshold, progress, worker_progress, jr, tally,
                      done, total, workers, tel=NULL,
                      event_tags=None, stop_rule=None) -> None:
    """Submit trials to a persistent forked pool in rounds; commit in order.

    Each round covers a contiguous index range strided across the workers
    (worker ``w`` gets indices ``start+w, start+w+workers, ...``) — for a
    fixed-budget campaign there is exactly one round covering everything,
    which reproduces the historical static shards index for index. The
    parent buffers out-of-order results in ``pending`` and journals /
    tallies / reports them strictly by trial index, so the journal is
    byte-compatible with a serial run's and kill/resume semantics are
    unchanged.

    With a ``stop_rule`` the rounds are bounded chunks: the first reaches
    the rule's ``min_trials`` floor, later ones keep roughly two chunks in
    flight, and a new round is submitted only while the committed prefix
    leaves the rule unsatisfied. Once it is satisfied the scheduler stops
    submitting and drops any still-in-flight results — they were never
    journaled, so the committed prefix (and hence the tally) is identical
    at any worker count.
    """
    ctx = multiprocessing.get_context("fork")
    result_q = ctx.Queue()
    tel_args = (tel.campaign, tel.t0) if tel.enabled else None
    task_qs = [ctx.Queue() for _ in range(workers)]
    procs: list[tuple[int, multiprocessing.Process]] = []
    for w in range(workers):
        proc = ctx.Process(
            target=_worker_main,
            args=(w, task_qs[w], seeds, trial_fn, gpu_factory, result_q,
                  tel_args),
            daemon=True, name=f"repro-trial-worker-{w}")
        proc.start()
        procs.append((w, proc))

    next_to_submit = done

    def submit_round(count: int) -> None:
        nonlocal next_to_submit
        chunk = range(next_to_submit, min(total, next_to_submit + count))
        if not chunk:
            return
        for w in range(workers):
            shard = list(chunk)[w::workers]
            if shard:
                task_qs[w].put(shard)
        next_to_submit = chunk.stop
        tally.rounds += 1
        if tel.enabled and stop_rule is not None:
            tel.emit("plan", round=tally.rounds, submitted=len(chunk),
                     horizon=next_to_submit)

    if stop_rule is None:
        chunk_size = total - done  # everything in one round, as ever
        submit_round(chunk_size)
    else:
        chunk_size = _round_chunk(stop_rule, workers)
        floor = getattr(stop_rule, "min_trials", 1)
        submit_round(max(chunk_size, floor - done))
    log.info("campaign %s: running up to %d remaining trials on %d workers",
             key, total - done, workers)

    pending: dict[int, tuple[str, int, list[dict]]] = {}
    per_worker: dict[int, int] = {w: 0 for w, _ in procs}
    running = {w for w, _ in procs}
    next_index = done
    try:
        while next_index < total and not tally.stopped_early:
            try:
                msg = result_q.get(timeout=0.5)
            except queue_mod.Empty:
                dead = sorted(w for w, proc in procs
                              if w in running and not proc.is_alive())
                if dead:
                    raise CampaignError(
                        f"campaign {key}: worker(s) "
                        f"{', '.join(map(str, dead))} died without reporting "
                        f"a result (killed?); the journal retains "
                        f"{next_index}/{total} completed trials — re-run to "
                        f"resume")
                continue
            kind = msg[0]
            if kind == "events":
                tel.ingest(msg[2])
                continue
            if kind == "fatal":
                _, worker_id, exc, text, tb = msg
                running.discard(worker_id)
                if exc is not None:
                    raise exc
                raise CampaignError(
                    f"campaign {key}: worker {worker_id} failed with an "
                    f"unpicklable error {text}; worker traceback:\n{tb}")
            _, worker_id, i, outcome_value, cycles, extra, crash_records = msg
            pending[i] = (outcome_value, cycles, extra, crash_records)
            per_worker[worker_id] += 1
            if worker_progress is not None:
                worker_progress(worker_id, per_worker[worker_id])

            while next_index in pending:
                outcome_value, cycles, extra, crash_records = pending.pop(
                    next_index)
                outcome = FaultOutcome(outcome_value)
                tally.crash_events += len(crash_records)
                if jr is not None:
                    trial_record = {"event": "trial", "trial": next_index,
                                    "seed": seeds[next_index],
                                    "outcome": outcome_value,
                                    "cycles": cycles}
                    if extra is not None:
                        trial_record["sdc"] = extra
                    records = crash_records + [trial_record]
                    if tel.enabled:
                        with tel.span("journal.commit", trial=next_index):
                            jr.append_many(records)
                    else:
                        jr.append_many(records)
                tally._record(outcome, cycles, baseline_cycles)
                if extra is not None:
                    tally.sdc_records.append({"trial": next_index, **extra})
                if tel.enabled:
                    event_fields = dict(event_tags or {})
                    if extra is not None:
                        event_fields["severity"] = extra.get("severity")
                    tel.emit("commit", trial=next_index,
                             outcome=outcome_value, cycles=cycles,
                             **event_fields)
                next_index += 1
                if progress is not None:
                    progress(next_index, total, outcome)
                if tally.counts.crash / total > threshold:
                    raise _threshold_error(
                        key, tally.counts.crash, total, threshold)
                if _stop_satisfied(stop_rule, tally):
                    tally.stopped_early = True
                    log.info("campaign %s: stop rule satisfied after %d/%d "
                             "trials", key, next_index, total)
                    break

            # Refill the pool while the rule is undecided: keep at most
            # ~two chunks in flight so satisfaction wastes little work.
            if (stop_rule is not None and not tally.stopped_early
                    and next_to_submit < total
                    and next_to_submit - next_index <= chunk_size):
                submit_round(chunk_size)
    finally:
        for _, proc in procs:
            if proc.is_alive():
                proc.terminate()
        for _, proc in procs:
            proc.join(timeout=5)
        result_q.close()
        for q in task_qs:
            q.close()
            q.cancel_join_thread()
