"""Resilient campaign execution engine.

All statistical FI campaigns (`run_microarch_campaign`,
`run_software_campaign`, `run_source_campaign`) delegate their trial loops
here. The engine owns everything that is about *executing N trials
reliably* rather than about *which fault to inject*:

* **Per-trial fault isolation** — an unexpected exception from one trial
  (anything but :class:`ExecutionError`/:class:`SimTimeout`, which the
  classifier already maps to DUE/Timeout) is caught, journaled with its
  traceback and trial seed, and retried once on a fresh :class:`GPU`. If
  the retry also fails the trial is tallied as the infrastructure outcome
  :attr:`FaultOutcome.CRASH` and the campaign moves on. A campaign whose
  crash fraction exceeds ``REPRO_MAX_TRIAL_FAILURES`` (default 10 %)
  raises :class:`CampaignError` instead of producing garbage statistics.

* **Journaled checkpoint/resume** — every completed trial is appended to
  ``.repro_cache/journal/<key>.jsonl`` (flush+fsync) before the next one
  starts. A killed campaign resumes from the last completed trial on the
  next invocation; per-trial seeds from :func:`spawn_seeds` are
  deterministic, so the resumed run's final tallies are bit-for-bit
  identical to an uninterrupted run. Completed campaigns delete their
  journal (the result lives in the regular cache).

* **Progress reporting** — an optional callback fires after every trial
  (including trials replayed from the journal), so experiment drivers and
  the CLI can show campaign progress.

Environment knobs:

* ``REPRO_MAX_TRIAL_FAILURES`` — max tolerated crash fraction (default 0.1).
"""

from __future__ import annotations

import logging
import os
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CampaignError, ConfigError, ExecutionError
from repro.fi.journal import CampaignJournal
from repro.fi.outcomes import FaultOutcome, OutcomeCounts

log = logging.getLogger(__name__)

#: Default ceiling on the fraction of trials allowed to CRASH.
DEFAULT_MAX_TRIAL_FAILURES = 0.10

#: ``progress(completed, total, outcome)`` — fired after every trial.
ProgressFn = Callable[[int, int, FaultOutcome], None]

#: ``trial_fn(gpu, trial_seed) -> (outcome, total cycles executed)``.
TrialFn = Callable[[object, int], "tuple[FaultOutcome, int]"]


def max_trial_failure_rate() -> float:
    """The configured crash-fraction ceiling (``REPRO_MAX_TRIAL_FAILURES``)."""
    env = os.environ.get("REPRO_MAX_TRIAL_FAILURES")
    if env is None or env == "":
        return DEFAULT_MAX_TRIAL_FAILURES
    try:
        rate = float(env)
    except ValueError:
        raise ConfigError(
            f"REPRO_MAX_TRIAL_FAILURES must be a fraction in [0, 1], "
            f"got {env!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(
            f"REPRO_MAX_TRIAL_FAILURES must be within [0, 1], got {rate}"
        )
    return rate


@dataclass
class TrialTally:
    """What the execution engine hands back to the campaign builders."""

    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    control_path_masked: int = 0  # masked trials whose cycle count changed
    resumed: int = 0  # trials replayed from the journal, not simulated
    crash_events: int = 0  # journaled crash *attempts* (>= counts.crash)

    def _record(self, outcome: FaultOutcome, cycles: int,
                baseline_cycles: int) -> None:
        self.counts.add(outcome)
        if outcome is FaultOutcome.MASKED and cycles != baseline_cycles:
            self.control_path_masked += 1


def _journal_prefix_valid(records: list[dict], seeds: list[int]) -> bool:
    """Trial records must be exactly trials 0..k-1 with the planned seeds."""
    for i, rec in enumerate(records):
        if i >= len(seeds):
            return False
        if rec.get("trial") != i or rec.get("seed") != seeds[i]:
            return False
        try:
            FaultOutcome(rec.get("outcome"))
            int(rec.get("cycles"))
        except (ValueError, TypeError):
            return False
    return True


def execute_trials(
    *,
    key: str,
    seeds: list[int],
    trial_fn: TrialFn,
    gpu_factory: Callable[[], object],
    baseline_cycles: int,
    max_failure_rate: float | None = None,
    progress: ProgressFn | None = None,
    journal: bool = True,
) -> TrialTally:
    """Run one trial per seed with isolation, journaling and resume.

    ``trial_fn(gpu, trial_seed)`` plans and injects one fault, runs the
    application and returns ``(outcome, cycles)``; it must leave the GPU
    reusable (reset happens inside the trial). ``gpu_factory`` builds a
    fresh, budget-configured GPU — used at start-up and to replace a GPU
    whose state an unexpected exception may have corrupted.

    ``journal=False`` disables checkpointing (used by ``use_cache=False``
    campaigns, whose callers asked for a from-scratch run).
    """
    total = len(seeds)
    threshold = (max_failure_rate if max_failure_rate is not None
                 else max_trial_failure_rate())
    tally = TrialTally()
    jr = CampaignJournal(key) if journal else None

    done = 0
    if jr is not None:
        records = jr.load()
        completed = [r for r in records if r.get("event") == "trial"]
        tally.crash_events = sum(
            1 for r in records if r.get("event") == "crash")
        if completed and not _journal_prefix_valid(completed, seeds):
            log.warning(
                "journal %s does not match the planned trial seeds "
                "(stale or foreign); discarding it and restarting", key)
            jr.discard()
            completed = []
            tally.crash_events = 0
        for rec in completed:
            outcome = FaultOutcome(rec["outcome"])
            tally._record(outcome, int(rec["cycles"]), baseline_cycles)
            done += 1
            if progress is not None:
                progress(done, total, outcome)
        tally.resumed = done
        if done:
            log.info("campaign %s: resumed %d/%d trials from journal",
                     key, done, total)
            if tally.counts.crash / total > threshold:
                raise CampaignError(
                    f"campaign {key}: journal already records "
                    f"{tally.counts.crash}/{total} crashed trials, exceeding "
                    f"REPRO_MAX_TRIAL_FAILURES={threshold:.0%}"
                )

    gpu = gpu_factory() if done < total else None
    for i in range(done, total):
        trial_seed = seeds[i]
        try:
            outcome, cycles = trial_fn(gpu, trial_seed)
        except ExecutionError:
            # SimTimeout/ExecutionError are fault effects the classifier
            # already maps to Timeout/DUE; one escaping the trial is a
            # harness bug the campaign must not paper over.
            raise
        except Exception as exc:
            tally.crash_events += 1
            tb = traceback.format_exc()
            log.warning("trial %d (seed %d) raised %r; retrying on a "
                        "fresh GPU", i, trial_seed, exc)
            if jr is not None:
                jr.append({"event": "crash", "trial": i, "seed": trial_seed,
                           "error": repr(exc), "traceback": tb,
                           "retry": False})
            gpu = gpu_factory()
            try:
                outcome, cycles = trial_fn(gpu, trial_seed)
            except ExecutionError:
                raise
            except Exception as exc2:
                tally.crash_events += 1
                tb2 = traceback.format_exc()
                log.error("trial %d (seed %d) raised %r again on retry; "
                          "tallying as CRASH", i, trial_seed, exc2)
                if jr is not None:
                    jr.append({"event": "crash", "trial": i,
                               "seed": trial_seed, "error": repr(exc2),
                               "traceback": tb2, "retry": True})
                gpu = gpu_factory()
                outcome, cycles = FaultOutcome.CRASH, 0

        tally._record(outcome, cycles, baseline_cycles)
        if jr is not None:
            jr.append({"event": "trial", "trial": i, "seed": trial_seed,
                       "outcome": outcome.value, "cycles": cycles})
        if progress is not None:
            progress(i + 1, total, outcome)

        if tally.counts.crash / total > threshold:
            raise CampaignError(
                f"campaign {key}: {tally.counts.crash}/{total} trials "
                f"crashed with unexpected exceptions, exceeding "
                f"REPRO_MAX_TRIAL_FAILURES={threshold:.0%}; see the journal "
                f"({CampaignJournal(key).path}) for tracebacks"
            )

    if jr is not None:
        jr.discard()
    return tally
