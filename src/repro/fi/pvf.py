"""PVF — Program Vulnerability Factor (Sridharan & Kaeli, related work §VII).

PVF is the microarchitecture-independent portion of AVF: the probability
that a fault in an *architecturally visible* resource affects execution. In
this model the architecturally visible register state is exactly the live
register banks (allocated per thread), so:

``PVF(RF) = FR`` measured over live-register injections (no derating), and
``AVF(RF) = PVF(RF) x DF(RF)`` — the hardware-utilisation derating is the
microarchitecture-dependent factor PVF deliberately excludes.

This module exposes that decomposition over existing campaign results, plus
a convenience runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GPUConfig
from repro.arch.structures import Structure
from repro.fi.campaign import CampaignResult, CampaignSpec, run_campaign
from repro.kernels.base import GPUApplication


@dataclass(frozen=True)
class PVFResult:
    """PVF of one kernel with its relation to AVF-RF."""

    kernel: str
    pvf: float  # failure rate over architecturally-visible (live) registers
    derating_factor: float

    @property
    def avf_rf(self) -> float:
        """AVF recovered from PVF: the Sridharan decomposition."""
        return self.pvf * self.derating_factor


def pvf_from_campaign(result: CampaignResult) -> PVFResult:
    """Derive the PVF view from a register-file microarch campaign."""
    if result.injector != "uarch" or result.structure != Structure.RF.value:
        raise ValueError("PVF derives from a register-file uarch campaign")
    return PVFResult(
        kernel=result.kernel,
        pvf=result.counts.failure_rate,
        derating_factor=result.derating_factor,
    )


def run_pvf_campaign(
    app: GPUApplication,
    kernel: str,
    config: GPUConfig,
    trials: int | None = None,
    seed: int = 1,
    use_cache: bool = True,
) -> PVFResult:
    """Measure PVF for one kernel (a live-register injection campaign)."""
    result = run_campaign(CampaignSpec(
        level="uarch", app=app, kernel=kernel, structure=Structure.RF,
        config=config, trials=trials, seed=seed, use_cache=use_cache,
    ))
    return pvf_from_campaign(result)
