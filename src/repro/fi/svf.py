"""SVF (Software Vulnerability Factor) mathematics.

Section II-C of the paper: the SVF of a kernel is simply the failure rate of
destination-register injections (no derating factor is applicable), and the
application SVF weights kernels by their dynamic instruction counts,
assuming a uniform fault distribution across time.
"""

from __future__ import annotations

from repro.fi.avf import VulnBreakdown
from repro.fi.campaign import CampaignResult


def svf_of_kernel(result: CampaignResult) -> VulnBreakdown:
    """SVF of one kernel: the raw class rates of software-level injection."""
    if result.injector not in ("sw", "sw-ld"):
        raise ValueError("svf_of_kernel needs a software-level campaign")
    counts = result.counts
    n = counts.classified
    if n == 0:
        return VulnBreakdown()
    return VulnBreakdown(
        sdc=counts.sdc / n,
        timeout=counts.timeout / n,
        due=counts.due / n,
    )


def svf_of_application(
    kernel_svfs: dict[str, VulnBreakdown], kernel_instructions: dict[str, int]
) -> VulnBreakdown:
    """Application SVF: kernel SVFs weighted by dynamic instruction counts."""
    kernels = list(kernel_svfs)
    return VulnBreakdown.combine(
        [kernel_svfs[k] for k in kernels],
        [max(kernel_instructions[k], 1) for k in kernels],
    )
