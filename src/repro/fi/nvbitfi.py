"""Software-level fault injector (the NVBitFI analogue).

The fault model is NVBitFI's: pick one dynamic instance of a general-purpose
instruction (one thread of one executed instruction) in the target kernel
and flip one bit of its *destination register value* right after the write.
Only live, software-visible data is ever touched — no dead registers, no
cache lines, no instruction encodings — which is precisely the blindness to
hardware state the paper shows makes SVF diverge from AVF.

``loads_only=True`` restricts candidates to memory loads (LD/LDS/LDT
destinations) and yields the paper's SVF-LD metric (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import derive_rng


@dataclass
class SoftwareFaultPlan:
    """One planned software-level injection."""

    launch_index: int
    candidate_index: int  # thread-level dynamic-instruction candidate number
    bit: int  # 0..31 within the destination value
    loads_only: bool = False
    fired: bool = field(default=False)
    description: str = field(default="")
    #: Instruction class actually hit ("load"/"alu"); SDC-anatomy site tag.
    injected_class: str = field(default="")


class SoftwareInjector:
    """GPU hook receiving ``after_write`` for every injectable instruction."""

    #: Destination-register model: the SM skips the source-injection hooks.
    wants_sources = False

    def __init__(self, plan: SoftwareFaultPlan):
        self.plan = plan
        self._active = False
        self._counter = 0

    def begin_launch(self, launch_index: int, kernel_name: str) -> None:
        self._active = launch_index == self.plan.launch_index and not self.plan.fired
        self._counter = 0

    def after_write(self, warp, dst: int, gm: np.ndarray, n_exec: int,
                    is_load: bool) -> None:
        """Hot-path hook: count candidates; flip when the target is reached."""
        if not self._active:
            return
        plan = self.plan
        if plan.loads_only and not is_load:
            return
        start = self._counter
        self._counter = start + n_exec
        k = plan.candidate_index
        if start <= k < start + n_exec:
            lane = int(np.nonzero(gm)[0][k - start])
            warp.bank.regs[dst, lane] ^= np.uint32(1 << plan.bit)
            plan.fired = True
            plan.injected_class = "load" if is_load else "alu"
            plan.description = (
                f"warp {warp.uid} lane {lane} R{dst} bit {plan.bit}"
            )
            self._active = False


def plan_software_fault(
    launches: list[dict],
    seed: int,
    loads_only: bool = False,
    context: str = "",
) -> SoftwareFaultPlan:
    """Draw one fault plan, uniform over the kernel's dynamic candidates.

    ``launches`` are the profile records of the target kernel; instances are
    weighted by their candidate counts so the draw is uniform over all
    dynamic candidates of the kernel across its launches. ``context``
    (e.g. ``"app/kernel"``) names the target in planner errors.
    """
    from repro.errors import PlanningError

    rng = derive_rng(seed, "sw-plan")
    key = "injectable_loads" if loads_only else "injectable"
    launches = [rec for rec in launches if rec[key] > 0]
    if not launches:
        where = context or "the target kernel"
        raise PlanningError(
            f"cannot plan a software fault for {where}: no injectable "
            f"candidates ({'loads' if loads_only else 'all'}) — profile the "
            f"kernel first, or pick a kernel that executes instructions"
        )
    weights = np.array([rec[key] for rec in launches], dtype=float)
    idx = int(rng.choice(len(launches), p=weights / weights.sum()))
    chosen = launches[idx]
    candidate = int(rng.integers(chosen[key]))
    bit = int(rng.integers(32))
    return SoftwareFaultPlan(
        launch_index=chosen["index"],
        candidate_index=candidate,
        bit=bit,
        loads_only=loads_only,
    )
