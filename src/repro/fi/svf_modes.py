"""Extended software-level fault models (Section V-B of the paper).

The paper identifies a core limitation of destination-register injection:
it cannot represent a fault that an instruction *reads* — and proposes a
register reuse analyzer that would replicate a source-register fault into
every subsequent reader. This module implements the experiment:

* ``SourceTransientInjector`` — flip one bit of one source register for a
  single dynamic instruction, then restore it (the naive source-injection
  model the paper criticises: "the fault would affect only this
  instruction").
* ``SourceStickyInjector`` — flip the bit and leave it until the program
  overwrites the register (the reuse-analyzer-augmented model: the fault
  affects every subsequent read, matching microarchitecture behaviour).

Comparing the two SVF estimates quantifies how much vulnerability the naive
model misses — the replication factor of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import derive_rng


@dataclass
class SourceFaultPlan:
    """One planned source-register injection."""

    launch_index: int
    candidate_index: int  # over (dynamic instruction, source register, lane)
    bit: int
    sticky: bool  # False: transient (restore after the instruction)
    fired: bool = field(default=False)
    description: str = field(default="")


class SourceInjector:
    """GPU hook flipping a *source* register around one dynamic instruction.

    Exposes ``wants_sources`` so the SM issue loop knows to call the
    before/after pair; destination counting hooks are no-ops here.
    """

    wants_sources = True

    def __init__(self, plan: SourceFaultPlan):
        self.plan = plan
        self._active = False
        self._counter = 0

    def begin_launch(self, launch_index: int, kernel_name: str) -> None:
        self._active = (
            launch_index == self.plan.launch_index and not self.plan.fired
        )
        self._counter = 0

    def after_write(self, warp, dst, gm, n_exec, is_load) -> None:
        """Destination hook (unused by source models)."""

    def before_exec(self, warp, instr, gm, n_exec: int):
        """Source hook: returns a restore callable for transient faults."""
        if not self._active:
            return None
        src_regs = instr.source_registers()
        if not src_regs:
            return None
        plan = self.plan
        candidates = n_exec * len(src_regs)
        start = self._counter
        self._counter = start + candidates
        k = plan.candidate_index
        if not start <= k < start + candidates:
            return None
        offset = k - start
        reg = src_regs[offset // n_exec]
        lane = int(np.nonzero(gm)[0][offset % n_exec])
        mask = np.uint32(1 << plan.bit)
        warp.bank.regs[reg, lane] ^= mask
        plan.fired = True
        plan.description = f"warp {warp.uid} lane {lane} R{reg} bit {plan.bit}"
        self._active = False
        if plan.sticky:
            return None

        def restore(_warp=warp, _reg=reg, _lane=lane, _mask=mask):
            _warp.bank.regs[_reg, _lane] ^= _mask

        return restore


def count_source_candidates(program, stats) -> None:
    """(Documented helper) Source candidates are counted dynamically by the
    injector; planning uses the destination-candidate count as a proxy upper
    bound scaled by average source arity."""


def plan_source_fault(
    launches: list[dict], seed: int, sticky: bool, context: str = ""
) -> SourceFaultPlan:
    """Draw one source-register fault plan.

    Candidate spaces for source injection are not in the standard profile
    (NVBitFI does not count them either), so we draw the candidate index
    uniformly from a window proportional to the launch's destination
    candidates scaled by a source-arity factor of 2 — a draw past the real
    candidate count simply never fires and is classified Masked, which
    matches the behaviour of real sampling-based injectors that discard
    no-op plans.
    """
    from repro.errors import PlanningError

    rng = derive_rng(seed, "svf-src-plan")
    launches = [rec for rec in launches if rec["injectable"] > 0]
    if not launches:
        where = context or "the target kernel"
        raise PlanningError(
            f"cannot plan a source-operand fault for {where}: no injectable "
            f"candidates — profile the kernel first, or pick a kernel that "
            f"executes instructions"
        )
    weights = np.array([rec["injectable"] for rec in launches], dtype=float)
    idx = int(rng.choice(len(launches), p=weights / weights.sum()))
    chosen = launches[idx]
    candidate = int(rng.integers(chosen["injectable"] * 2))
    return SourceFaultPlan(
        launch_index=chosen["index"],
        candidate_index=candidate,
        bit=int(rng.integers(32)),
        sticky=sticky,
    )
