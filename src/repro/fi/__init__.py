"""Fault injection: microarchitecture-level (gpuFI-4-style, AVF) and
software-level (NVBitFI-style, SVF) injectors plus campaign orchestration."""

from repro.fi.outcomes import FaultOutcome, OutcomeCounts
from repro.fi.gpufi import MicroarchFaultPlan, MicroarchInjector
from repro.fi.nvbitfi import SoftwareFaultPlan, SoftwareInjector
from repro.fi.campaign import (
    AppProfile,
    CampaignResult,
    CampaignSpec,
    profile_app,
    run_campaign,
)
from repro.fi.avf import (
    avf_of_application,
    avf_of_chip,
    avf_of_structure,
    derating_factor,
)
from repro.fi.svf import svf_of_application, svf_of_kernel

__all__ = [
    "FaultOutcome",
    "OutcomeCounts",
    "MicroarchFaultPlan",
    "MicroarchInjector",
    "SoftwareFaultPlan",
    "SoftwareInjector",
    "AppProfile",
    "CampaignResult",
    "CampaignSpec",
    "profile_app",
    "run_campaign",
    "avf_of_application",
    "avf_of_chip",
    "avf_of_structure",
    "derating_factor",
    "svf_of_application",
    "svf_of_kernel",
]
