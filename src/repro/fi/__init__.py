"""Fault injection: microarchitecture-level (gpuFI-4-style, AVF) and
software-level (NVBitFI-style, SVF) injectors plus campaign orchestration.

This package's public surface is this module: build a frozen
:class:`CampaignSpec`, hand it to :func:`run_campaign`, get a
:class:`CampaignResult` whose :class:`OutcomeCounts` feed the AVF/SVF
math. Adaptive campaigns add :class:`StopRule` (CI-driven early
stopping) and the two-level suite planner (:func:`plan_suite` /
:func:`run_plan`). The submodules (``runner``, ``journal``, ``gpufi``,
``nvbitfi``, ...) are implementation detail — import from ``repro.fi``
unless you are testing their internals.
"""

from repro.fi.outcomes import FaultOutcome, OutcomeCounts
from repro.fi.gpufi import MicroarchFaultPlan, MicroarchInjector
from repro.fi.nvbitfi import SoftwareFaultPlan, SoftwareInjector
from repro.fi.campaign import (
    AppProfile,
    CampaignResult,
    CampaignSpec,
    default_trials,
    profile_app,
    run_campaign,
)
from repro.fi.planner import (
    CellPlan,
    StopRule,
    SuitePlan,
    plan_suite,
    render_plan,
    run_plan,
)
from repro.fi.runner import TrialTally
from repro.fi.avf import (
    VulnBreakdown,
    avf_of_application,
    avf_of_cache_group,
    avf_of_chip,
    avf_of_structure,
    derating_factor,
)
from repro.fi.svf import svf_of_application, svf_of_kernel

#: Alias for callers who think in campaign outcomes rather than fault
#: taxonomy terms (``from repro.fi import Outcome``).
Outcome = FaultOutcome

__all__ = [
    "FaultOutcome",
    "Outcome",
    "OutcomeCounts",
    "MicroarchFaultPlan",
    "MicroarchInjector",
    "SoftwareFaultPlan",
    "SoftwareInjector",
    "AppProfile",
    "CampaignResult",
    "CampaignSpec",
    "StopRule",
    "CellPlan",
    "SuitePlan",
    "TrialTally",
    "default_trials",
    "profile_app",
    "run_campaign",
    "plan_suite",
    "render_plan",
    "run_plan",
    "VulnBreakdown",
    "avf_of_application",
    "avf_of_cache_group",
    "avf_of_chip",
    "avf_of_structure",
    "derating_factor",
    "svf_of_application",
    "svf_of_kernel",
]
