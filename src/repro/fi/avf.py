"""AVF (Architectural Vulnerability Factor) mathematics.

Implements the paper's Section II-B formulas:

* ``FR(h) = Pct(SDC) + Pct(Timeout) + Pct(DUE)``
* ``DF(h) = size_per_thread(h) * num_threads / system_size(h)`` (RF, SMEM)
* ``AVF(h) = FR(h) * DF(h)``
* ``AVF(all) = sum_h AVF(h) * size(h) / sum(size)``
* ``AVF(app) = sum_k AVF(k) * cycles(k) / sum(cycles)``

All breakdowns carry the three non-masked classes separately so stacked
SDC/Timeout/DUE charts (Figs. 1, 2, 4, 5, 7-10) can be rendered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GPUConfig
from repro.arch.structures import (
    Structure,
    rf_allocation_bits,
    structure_bits,
)
from repro.fi.campaign import CampaignResult
from repro.utils.stats import weighted_mean


@dataclass(frozen=True)
class VulnBreakdown:
    """A vulnerability factor split into its fault-effect classes."""

    sdc: float = 0.0
    timeout: float = 0.0
    due: float = 0.0

    @property
    def total(self) -> float:
        return self.sdc + self.timeout + self.due

    def scaled(self, factor: float) -> "VulnBreakdown":
        return VulnBreakdown(
            self.sdc * factor, self.timeout * factor, self.due * factor
        )

    def as_dict(self) -> dict[str, float]:
        return {"sdc": self.sdc, "timeout": self.timeout, "due": self.due,
                "total": self.total}

    @staticmethod
    def combine(items: list["VulnBreakdown"], weights: list[float]
                ) -> "VulnBreakdown":
        """Weighted combination (weights are normalised internally)."""
        return VulnBreakdown(
            sdc=weighted_mean([i.sdc for i in items], weights),
            timeout=weighted_mean([i.timeout for i in items], weights),
            due=weighted_mean([i.due for i in items], weights),
        )


def derating_factor(
    structure: Structure, launches: list[dict], config: GPUConfig
) -> float:
    """DF(h) for the target kernel, cycle-weighted over its launches.

    The paper's formula assumes one launch geometry; kernels launched with
    varying grids (e.g. NW's diagonal sweep) get the cycle-weighted mean of
    per-launch factors. Caches need no derating (DF = 1).
    """
    if not structure.uses_derating:
        return 1.0
    system = structure_bits(structure, config)
    factors: list[float] = []
    weights: list[float] = []
    for rec in launches:
        if structure is Structure.RF:
            live = rf_allocation_bits(rec["regs_per_thread"], rec["threads"])
        else:  # SMEM
            live = rec["smem_bytes_per_cta"] * 8 * rec["ctas"]
        factors.append(min(1.0, live / system))
        weights.append(max(rec["cycles"], 1))
    if not factors:
        return 0.0
    return weighted_mean(factors, weights)


def avf_of_structure(result: CampaignResult) -> VulnBreakdown:
    """AVF of one hardware structure for one kernel: class rates x DF."""
    if result.injector != "uarch":
        raise ValueError("avf_of_structure needs a microarchitecture campaign")
    counts = result.counts
    df = result.derating_factor
    n = counts.classified
    if n == 0:
        return VulnBreakdown()
    return VulnBreakdown(
        sdc=counts.sdc / n * df,
        timeout=counts.timeout / n * df,
        due=counts.due / n * df,
    )


def avf_of_chip(
    per_structure: dict[Structure, CampaignResult], config: GPUConfig
) -> VulnBreakdown:
    """Full-chip AVF of one kernel: size-weighted over hardware structures."""
    items: list[VulnBreakdown] = []
    weights: list[float] = []
    for structure, result in per_structure.items():
        items.append(avf_of_structure(result))
        weights.append(structure_bits(structure, config))
    return VulnBreakdown.combine(items, weights)


def avf_of_cache_group(
    per_structure: dict[Structure, CampaignResult], config: GPUConfig
) -> VulnBreakdown:
    """AVF-Cache (Fig. 5): size-weighted over L1D + L1T + L2 only."""
    from repro.arch.structures import CACHE_STRUCTURES

    subset = {s: r for s, r in per_structure.items() if s in CACHE_STRUCTURES}
    if not subset:
        raise ValueError("no cache-structure campaigns provided")
    return avf_of_chip(subset, config)


def avf_of_application(
    kernel_avfs: dict[str, VulnBreakdown], kernel_cycles: dict[str, int]
) -> VulnBreakdown:
    """Application AVF: kernel AVFs weighted by kernel cycle counts."""
    kernels = list(kernel_avfs)
    return VulnBreakdown.combine(
        [kernel_avfs[k] for k in kernels],
        [max(kernel_cycles[k], 1) for k in kernels],
    )


def outcome_mix(result: CampaignResult) -> dict[str, float]:
    """Outcome fractions (masked/sdc/timeout/due) of the classified trials.

    Unlike :func:`avf_of_structure` this applies no derating and keeps the
    masked fraction — the natural view for comparing fault models
    (transient vs stuck-at vs intermittent), where the question is "what
    happens to the workload", not "how vulnerable is the bit".
    """
    counts = result.counts
    n = counts.classified
    if n == 0:
        return {"masked": 0.0, "sdc": 0.0, "timeout": 0.0, "due": 0.0}
    return {
        "masked": counts.masked / n,
        "sdc": counts.sdc / n,
        "timeout": counts.timeout / n,
        "due": counts.due / n,
    }


def avf_by_fault_model(
    per_model: dict[str, CampaignResult]
) -> dict[str, VulnBreakdown]:
    """Per-fault-model AVF of one structure/kernel: model -> breakdown.

    ``per_model`` maps a fault-model name (``transient``, ``stuck0``,
    ``stuck1``, ``intermittent``) to the campaign run under that model;
    each result's recorded ``fault_model`` must match its key, so mixed-up
    dictionaries fail loudly instead of mislabelling a comparison.
    """
    out: dict[str, VulnBreakdown] = {}
    for model, result in per_model.items():
        if result.fault_model != model:
            raise ValueError(
                f"result for key {model!r} was run with "
                f"fault_model={result.fault_model!r}"
            )
        out[model] = avf_of_structure(result)
    return out
